"""Spill-to-disk streaming for packed traces: bounded-RSS recording.

A million-event trace at ~100 bytes of column storage per row keeps
the whole interleaving resident for the lifetime of the analysis.
:class:`SpillingRecorder` bounds that: rows are packed into an
in-memory :class:`~repro.trace.columnar.PackedTrace` buffer as usual,
but every ``spill_rows`` rows the column arrays are appended to
per-column chunk files on disk and the buffer is reset — only the
interned side tables (strings, locksets, addresses, cells) stay in
memory, and those are small and deduplicated by construction.

Finalizing produces a :class:`SpilledTrace`: a ``PackedTrace`` whose
columns are ``memoryview``s over ``mmap``-ed column files, so every
consumer — the fused sweep's column locals, ``event(i)``
reconstruction, ``digest()``, serialization's ``list(column)`` — works
unchanged with **global row indices preserved**, while the OS pages
column data in and out on demand (sequential sweeps fault pages in
order; RSS stays bounded by the page cache, not the trace).  The
chunk layout is trivially concatenative: chunk ``j`` of column ``c``
is exactly ``column[j*spill_rows:(j+1)*spill_rows].tobytes()``, so the
on-disk bytes equal the in-memory column bytes and
:meth:`PackedTrace.digest` — and with it every fuzz-memo key and
cached-artifact digest — is identical on both paths (DESIGN.md §13).

The column files are unlinked immediately after mapping (POSIX keeps
mapped pages valid), so spill directories cannot leak past process
exit even on crash.
"""

from __future__ import annotations

import mmap
import os
import tempfile

from repro.trace.columnar import PackedTrace

#: Buffered rows before a flush to the column files; also the default
#: threshold below which nothing is ever written (short traces never
#: touch disk).  Override per recorder or via ``REPRO_SPILL_ROWS``.
DEFAULT_SPILL_ROWS = 65_536

_ENV_SPILL_ROWS = "REPRO_SPILL_ROWS"


def spill_rows_from_env() -> int | None:
    """The process-wide spill threshold, or None when spill is off."""
    raw = os.environ.get(_ENV_SPILL_ROWS)
    if not raw:
        return None
    try:
        rows = int(raw)
    except ValueError:
        return None
    return rows if rows > 0 else None


class SpilledTrace(PackedTrace):
    """A packed trace whose columns live in unlinked mapped files.

    Read-only: ``append`` would need array columns.  Everything else —
    length, iteration, ``event(i)``, ``digest()``, ``counts()``,
    report-side accessors — inherits from :class:`PackedTrace` and
    works on the ``memoryview`` columns directly.
    """

    __slots__ = ("_maps",)

    def __init__(self, test_name: str = "") -> None:
        super().__init__(test_name)
        self._maps: list[mmap.mmap] = []

    def append(self, event) -> None:  # pragma: no cover - guard rail
        raise TypeError("SpilledTrace is finalized; record through "
                        "SpillingRecorder instead")

    def nbytes(self) -> int:
        """Resident estimate: side tables only — column bytes live in
        the page cache and are reclaimable, which is the point."""
        return self.side_nbytes()

    def close(self) -> None:
        """Drop the column mappings (the trace becomes unusable)."""
        for name in self.COLUMNS:
            setattr(self, name, memoryview(b""))
        for mapping in self._maps:
            mapping.close()
        self._maps.clear()


class SpillingRecorder:
    """Drop-in for :class:`ColumnarRecorder` with disk-backed columns.

    Satisfies the same listener protocol (``interests``, ``on_event``)
    and exposes ``packed`` — finalizing the chunk files into a
    :class:`SpilledTrace` on first access.
    """

    def __init__(
        self,
        test_name: str = "",
        interests=None,
        spill_rows: int = DEFAULT_SPILL_ROWS,
        spill_dir: str | None = None,
        fault_injector=None,
    ) -> None:
        self.interests = interests
        self.spill_rows = max(1, spill_rows)
        #: Optional :class:`repro.narada.faults.FaultInjector`; when its
        #: plan carries a ``spill`` rate, flushed chunks are sheared so
        #: digest-verification downstream exercises detection of
        #: corrupted spill files (chaos-harness hook, off in production).
        self.fault_injector = fault_injector
        self._flush_counter = 0
        self._buffer = PackedTrace(test_name=test_name)
        self._dir = tempfile.mkdtemp(prefix="repro-spill-", dir=spill_dir)
        self._files = {
            name: open(os.path.join(self._dir, f"col_{name}.bin"), "wb")
            for name in PackedTrace.COLUMNS
        }
        self._packed: SpilledTrace | None = None
        buffer_append = self._buffer.append
        buffer_op = self._buffer.op
        threshold = self.spill_rows

        def on_event(event) -> None:
            buffer_append(event)
            if len(buffer_op) >= threshold:
                self._flush()

        self.on_event = on_event

    def _flush(self) -> None:
        """Append the buffered column bytes to the chunk files."""
        buffer = self._buffer
        self._flush_counter += 1
        corrupt = (
            self.fault_injector is not None
            and self.fault_injector.corrupt_spill(
                f"{buffer.test_name}#{self._flush_counter}"
            )
        )
        for name in PackedTrace.COLUMNS:
            column = getattr(buffer, name)
            if corrupt and name == "op" and column:
                # Injected chunk corruption: flip the first buffered op
                # so the spilled trace's digest diverges from the packed
                # path — the detectable symptom of a torn chunk write.
                column = column[:]
                column[0] = (column[0] + 1) % 256
            column.tofile(self._files[name])
            del getattr(buffer, name)[:]

    @property
    def packed(self) -> SpilledTrace:
        """Finalize (idempotent) and return the mapped trace."""
        if self._packed is None:
            self._packed = self._finalize()
        return self._packed

    def _finalize(self) -> SpilledTrace:
        if self._files is None:
            raise RuntimeError("SpillingRecorder already finalized")
        self._flush()
        buffer = self._buffer
        trace = SpilledTrace(test_name=buffer.test_name)
        # Side tables (and intern dicts, for debuggability) move over
        # wholesale; only the columns are disk-backed.
        trace.strtab = buffer.strtab
        trace.locktab = buffer.locktab
        trace.addrtab = buffer.addrtab
        trace.cells = buffer.cells
        trace._strid = buffer._strid
        trace._lockid = buffer._lockid
        trace._addrid = buffer._addrid
        for name, handle in self._files.items():
            handle.close()
            path = os.path.join(self._dir, f"col_{name}.bin")
            size = os.path.getsize(path)
            typecode = PackedTrace._TYPECODES[name]
            if size == 0:
                view = memoryview(b"").cast(typecode)
            else:
                with open(path, "rb") as read_handle:
                    mapping = mmap.mmap(
                        read_handle.fileno(), 0, access=mmap.ACCESS_READ
                    )
                trace._maps.append(mapping)
                view = memoryview(mapping).cast(typecode)
            setattr(trace, name, view)
            os.unlink(path)
        os.rmdir(self._dir)
        self._files = None
        return trace


__all__ = [
    "DEFAULT_SPILL_ROWS",
    "SpilledTrace",
    "SpillingRecorder",
    "spill_rows_from_env",
]
