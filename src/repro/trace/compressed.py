"""Run-length/grammar compressed view of a packed trace.

Hot loops dominate recorded interleavings: a ``Worker.spin`` body emits
the same few access rows thousands of times, differing only in the
event label and the observed values.  :func:`compress_trace` finds
those maximal tandem repeats and represents the trace as a segment
list — literal row ranges plus ``(start, period, count)`` repeat
blocks — over the *unchanged* :class:`~repro.trace.columnar.PackedTrace`
(SEQ-style, per *Data Race Detection on Compressed Traces*,
Kini/Mathur/Viswanathan).  The fused sweep engine then processes one
occurrence of a repeated block, proves the per-pass state transform
has converged, and applies the block's summarized effect ``k`` times
instead of re-decoding ``k`` occurrences (see ``analysis/sweep.py``
and DESIGN.md §13).

Repetition is detected on a **projection signature**: every column
except the event ``label`` and the six value columns
(``vkind``/``vint``/``vcls``/``okind``/``oint``/``ocls``).  Two rows
with equal signatures drive every sweep-kernel state transition
identically — fragments and handlers never read labels or values on
their hot paths (labels are compared only for *order*, which row order
preserves; values are read only when a statically new race is
recorded, and that event breaks block-summary convergence by
construction).  The excluded columns therefore cost nothing in
soundness and are exactly what varies between loop iterations.

The underlying packed columns, side tables, and
:meth:`PackedTrace.digest` are untouched: a compressed trace is an
access plan, not a re-encoding, so fuzz-memo keys and cached-artifact
digests are identical on both paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

#: Columns participating in the repeat-detection signature: everything
#: except ``label`` and the value columns (see module docstring).
SIGNATURE_COLUMNS = (
    "op", "tid", "node", "call",
    "x", "y", "z", "cls", "fld", "lck", "adr", "aux", "flags",
)

#: Longest repeat period considered (rows per loop iteration times the
#: thread interleaving granularity is small in practice).
DEFAULT_MAX_PERIOD = 128

#: Minimum rows a repeat block must save ``((count - 1) * period)`` to
#: be worth a segment; sub-threshold repeats stay literal.
DEFAULT_MIN_SAVED = 8


class LiteralSeg(NamedTuple):
    """Rows ``[start, stop)`` replayed row-at-a-time."""

    start: int
    stop: int


class RepeatSeg(NamedTuple):
    """``count`` back-to-back occurrences of a ``period``-row block.

    Covers rows ``[start, start + period * count)``; every occurrence
    is signature-identical to the first (verified row-by-row during
    detection, never assumed).
    """

    start: int
    period: int
    count: int

    @property
    def stop(self) -> int:
        return self.start + self.period * self.count


@dataclass(frozen=True)
class CompressionStats:
    """Accounting for ``--trace-stats`` and the BENCH report."""

    total_rows: int
    literal_rows: int
    repeat_blocks: int
    rows_in_repeats: int
    #: Literal rows plus one period per repeat block — the row count a
    #: sweep touches when every block summary converges.
    compressed_rows: int

    @property
    def ratio(self) -> float:
        if self.compressed_rows == 0:
            return 1.0
        return self.total_rows / self.compressed_rows


class CompressedTrace:
    """A segment plan over an unchanged :class:`PackedTrace`.

    Duck-types the packed trace for identity purposes (``len``,
    ``digest``, ``test_name``) so memo keys and report paths need no
    changes; analysis goes through the segment list via
    ``run_sweep`` (which accepts either representation).
    """

    __slots__ = ("packed", "segments")

    def __init__(self, packed, segments: list) -> None:
        self.packed = packed
        self.segments = segments

    def __len__(self) -> int:
        return len(self.packed)

    @property
    def test_name(self) -> str:
        return self.packed.test_name

    def digest(self) -> str:
        """The underlying packed digest — compression is content-free."""
        return self.packed.digest()

    def stats(self) -> CompressionStats:
        literal = 0
        blocks = 0
        in_repeats = 0
        compressed = 0
        for seg in self.segments:
            if type(seg) is RepeatSeg:
                blocks += 1
                in_repeats += seg.period * seg.count
                compressed += seg.period
            else:
                literal += seg.stop - seg.start
                compressed += seg.stop - seg.start
        return CompressionStats(
            total_rows=len(self.packed),
            literal_rows=literal,
            repeat_blocks=blocks,
            rows_in_repeats=in_repeats,
            compressed_rows=compressed,
        )


def _signature_ids(packed) -> list[int]:
    """Intern each row's projection signature to a dense int id."""
    columns = [getattr(packed, name) for name in SIGNATURE_COLUMNS]
    ids: dict[tuple, int] = {}
    out: list[int] = []
    append = out.append
    setdefault = ids.setdefault
    for row in zip(*columns):
        append(setdefault(row, len(ids)))
    return out


def compress_trace(
    packed,
    max_period: int = DEFAULT_MAX_PERIOD,
    min_saved: int = DEFAULT_MIN_SAVED,
) -> CompressedTrace:
    """Detect maximal tandem repeats and build the segment plan.

    Detection is lag-array based: ``lag[i]`` is the distance to the
    previous row with the same signature.  A run of small finite lags
    marks a candidate repetitive region; the candidate period is the
    *maximum* lag over the run (the rarest row in a periodic region
    recurs at exactly the true period, while denser rows recur
    sooner), and the periodic span is then **verified row-by-row**
    (``sig[i] == sig[i - L]``) and extended in both directions, so a
    wrong candidate only loses compression, never correctness.

    Repeats need ``count >= 3`` (the sweep replays two occurrences to
    prove convergence, so shorter repeats cannot be skipped) and must
    save at least ``min_saved`` rows.
    """
    n = len(packed)
    sig = _signature_ids(packed)

    # lag[i]: distance to the previous identical signature, 0 if none.
    last_seen: dict[int, int] = {}
    lag = [0] * n
    for i, s in enumerate(sig):
        prev = last_seen.get(s)
        if prev is not None:
            lag[i] = i - prev
        last_seen[s] = i

    repeats: list[RepeatSeg] = []
    done = 0  # rows [0, done) already assigned to an accepted repeat
    i = 1
    while i < n:
        if not 0 < lag[i] <= max_period:
            i += 1
            continue
        # Maximal run of plausibly-periodic rows and its max lag.
        run_end = i
        period = 0
        while run_end < n and 0 < lag[run_end] <= max_period:
            if lag[run_end] > period:
                period = lag[run_end]
            run_end += 1
        # First verifiable position for this candidate period.
        w = i
        while w < run_end and (w < period or sig[w] != sig[w - period]):
            w += 1
        if w == run_end:
            i = run_end
            continue
        # Verified periodic span: extend forward past the run (later
        # rows may match at `period` even where their own lag is
        # smaller), then backward, then clip to unassigned rows.
        v = w
        while v < n and sig[v] == sig[v - period]:
            v += 1
        start = w - period
        while start > done and sig[start - 1] == sig[start - 1 + period]:
            start -= 1
        if start < done:
            start += -(-(done - start) // period) * period  # ceil-align
        count = (v - start) // period
        if count >= 3 and (count - 1) * period >= min_saved:
            repeats.append(RepeatSeg(start, period, count))
            done = start + period * count
            i = max(v, done)
        else:
            i = max(i + 1, v)

    segments: list = []
    cursor = 0
    for rep in repeats:
        if rep.start > cursor:
            segments.append(LiteralSeg(cursor, rep.start))
        segments.append(rep)
        cursor = rep.stop
    if cursor < n:
        segments.append(LiteralSeg(cursor, n))
    return CompressedTrace(packed, segments)


__all__ = [
    "CompressedTrace",
    "CompressionStats",
    "DEFAULT_MAX_PERIOD",
    "DEFAULT_MIN_SAVED",
    "LiteralSeg",
    "RepeatSeg",
    "SIGNATURE_COLUMNS",
    "compress_trace",
]
