"""Generated-corpus recall/precision benchmark: writes BENCH_corpus.json.

Generates a seeded synthetic corpus (``repro.corpus``), pipelines every
subject through detect -> synthesize -> fuzz via the parallel
orchestrator, and scores the output against each subject's known-answer
oracle.  Two timed pipeline passes share one artifact cache:

* **cold** — fresh cache: every stage computes;
* **warm** — identical rerun: every stage replays from
  content-addressed artifacts.

Three gates:

* **recall == 1.0** — every oracle-known true race must be detected and
  no subject may fail or come back partial.  The corpus is constructed
  so each true race is expressible under *any* schedule (see
  ``repro.corpus.templates``), which is what makes a hard gate sound;
* the warm rerun must be >= 5x faster than cold;
* the per-subject outcome digests must be byte-identical cold vs warm.

Precision, pair precision, and deadlock confirmation are **measured and
reported**, not gated — the detectors are supposed to earn those
numbers, and bounded random fuzzing makes no completeness claim for
deadlocks.

Usage::

    PYTHONPATH=src python benchmarks/bench_corpus_recall.py \
        [--count N] [--seed S] [--jobs N] [--runs N] [--out PATH]

or via pytest (20-subject smoke): see ``test_corpus_recall_smoke``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import shutil
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.corpus import (  # noqa: E402
    CorpusConfig,
    generate_corpus,
    run_corpus,
)
from repro.narada import (  # noqa: E402
    ArtifactCache,
    PipelineConfig,
    PipelineOrchestrator,
)

OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_corpus.json"

#: Payload schema; bump on any shape change so stale reports are caught
#: by ``perf_regression.py --check`` instead of KeyErrors downstream.
SCHEMA_VERSION = 1

DEFAULT_COUNT = 200
DEFAULT_SEED = 0

#: Random schedules per synthesized test.  Recall does not depend on
#: this (every oracle race is schedule-independent by construction);
#: it only affects how often the deadlock templates actually deadlock.
DEFAULT_RUNS = 2

#: Acceptance ratio for the warm-cache rerun.
REQUIRED_WARM_SPEEDUP = 5.0


def _run(config, jobs, cache_dir, runs, batch_size):
    start = time.perf_counter()
    with PipelineOrchestrator(
        jobs=jobs,
        cache=ArtifactCache(cache_dir),
        config=PipelineConfig(random_runs=runs),
    ) as orch:
        result = run_corpus(config, orch, batch_size=batch_size)
    return time.perf_counter() - start, result


def run_bench(
    count: int = DEFAULT_COUNT,
    seed: int = DEFAULT_SEED,
    jobs: int = 2,
    runs: int = DEFAULT_RUNS,
    batch_size: int = 25,
    out_path: pathlib.Path = OUT_PATH,
) -> dict:
    """Generate, pipeline twice, score; write and return the payload."""
    config = CorpusConfig(seed=seed, count=count).validate()
    cpu_count = os.cpu_count() or 1

    start = time.perf_counter()
    subjects = generate_corpus(config)
    generate_s = time.perf_counter() - start

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-corpus-")
    try:
        cold_s, cold = _run(config, jobs, cache_dir, runs, batch_size)
        warm_s, warm = _run(config, jobs, cache_dir, runs, batch_size)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    identical = cold.digests == warm.digests
    warm_speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    problems = cold.problems()

    failures = []
    failures.extend(f"recall: {p}" for p in problems)
    if warm_speedup < REQUIRED_WARM_SPEEDUP:
        failures.append(
            f"warm cache: {warm_speedup:.1f}x < required "
            f"{REQUIRED_WARM_SPEEDUP}x"
        )
    if not identical:
        failures.append(
            "determinism: outcome digests differ between cold and warm runs"
        )

    payload = {
        "schema_version": SCHEMA_VERSION,
        "scenario": {
            "count": count,
            "seed": seed,
            "random_runs": runs,
            "jobs": jobs,
            "batch_size": batch_size,
            "templates": list(config.templates),
            "min_templates": config.min_templates,
            "max_templates": config.max_templates,
        },
        "machine": {
            "cpu_count": cpu_count,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "times_s": {
            "generate": round(generate_s, 3),
            "pipeline_cold": round(cold_s, 3),
            "warm_cache": round(warm_s, 3),
        },
        "speedups": {
            "warm_vs_cold": round(warm_speedup, 2),
        },
        "required": {
            "recall": 1.0,
            "warm_vs_cold": REQUIRED_WARM_SPEEDUP,
        },
        "metrics": {
            "subjects": cold.subjects,
            "source_lines": sum(
                len(s.source.splitlines()) for s in subjects
            ),
            "oracle_races": cold.oracle_races,
            "detected_races": cold.detected_races,
            "true_detected": cold.true_detected,
            "missed_races": cold.missed_races,
            "recall": round(cold.recall, 4),
            "precision": round(cold.precision, 4),
            "candidate_pairs": cold.candidate_pairs,
            "true_candidate_pairs": cold.true_candidate_pairs,
            "pair_precision": round(cold.pair_precision, 4),
            "deadlock_expected": cold.deadlock_expected,
            "deadlock_observed": cold.deadlock_observed,
            "failed_subjects": cold.failed_subjects,
        },
        "determinism": {
            "byte_identical": identical,
        },
        "failures": failures,
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _summarize(payload: dict) -> str:
    scenario = payload["scenario"]
    times = payload["times_s"]
    metrics = payload["metrics"]
    lines = [
        "corpus recall ({} subject(s), seed={}, runs={}, jobs={})".format(
            scenario["count"],
            scenario["seed"],
            scenario["random_runs"],
            scenario["jobs"],
        ),
        f"  generate      {times['generate']:8.2f}s  "
        f"({metrics['source_lines']} source lines)",
        f"  pipeline cold {times['pipeline_cold']:8.2f}s",
        "  warm cache    {:8.2f}s  ({}x vs cold)".format(
            times["warm_cache"], payload["speedups"]["warm_vs_cold"]
        ),
        "  recall    {} ({}/{} oracle races, {} lost)".format(
            metrics["recall"],
            metrics["true_detected"],
            metrics["oracle_races"],
            metrics["missed_races"],
        ),
        "  precision {} ({}/{} detected)".format(
            metrics["precision"],
            metrics["true_detected"],
            metrics["detected_races"],
        ),
        "  pair precision {} ({}/{} candidates)".format(
            metrics["pair_precision"],
            metrics["true_candidate_pairs"],
            metrics["candidate_pairs"],
        ),
        "  deadlocks observed {}/{} expected".format(
            metrics["deadlock_observed"], metrics["deadlock_expected"]
        ),
        "  byte-identical digests: {}".format(
            payload["determinism"]["byte_identical"]
        ),
    ]
    for failure in payload["failures"]:
        lines.append(f"  GATE FAILED: {failure}")
    return "\n".join(lines)


def test_corpus_recall_smoke(tmp_path):
    """20-subject smoke: recall, warm-cache, and determinism gates."""
    payload = run_bench(
        count=20,
        jobs=1,
        runs=3,
        out_path=tmp_path / "BENCH_corpus_smoke.json",
    )
    try:
        from conftest import report_table

        report_table("corpus_recall_smoke", _summarize(payload))
    except ImportError:  # standalone collection
        pass
    assert payload["metrics"]["recall"] == 1.0
    assert payload["determinism"]["byte_identical"]
    assert payload["speedups"]["warm_vs_cold"] >= REQUIRED_WARM_SPEEDUP
    assert not payload["failures"], payload["failures"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=DEFAULT_COUNT)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--runs", type=int, default=DEFAULT_RUNS)
    parser.add_argument("--batch-size", type=int, default=25)
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args(argv)
    payload = run_bench(
        count=args.count,
        seed=args.seed,
        jobs=args.jobs,
        runs=args.runs,
        batch_size=args.batch_size,
        out_path=args.out,
    )
    print(_summarize(payload))
    print(f"wrote {args.out}")
    return 1 if payload["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
