"""Static lockset pre-filter benchmark: writes BENCH_static.json.

Runs the generated corpus through the staged candidate pipeline twice —
once with the static pre-filter on (the default) and once with
``--no-static-filter`` semantics — and once more warm to show the
``staticfilter`` stage replays from the artifact cache.  On top of the
corpus sweep, every paper subject (C1..C9) is synthesized and fuzzed
through the serial :class:`repro.narada.Narada` path in both modes and
the detection payloads are digest-compared.

Gates (the whole point of the filter is that it is *free* soundness-wise):

* **soundness** — recall must be 1.0 in both modes and the set of
  statically pruned pairs must not intersect any subject's oracle race
  set (zero lost true races);
* **pruned fraction >= 0.30** — the filter must discharge a meaningful
  share of candidate pairs, else ranking budgets buy nothing;
* **measured time reduction** — the filter-on cold pipeline must be
  faster than filter-off on the same corpus (pruned tests are skipped,
  not fuzzed);
* **paper-subject identity** — C1..C9 detection payloads must be
  byte-identical filter-on vs filter-off (no paper subject loses a
  race, a reproduction, or even a schedule to the filter).

Usage::

    PYTHONPATH=src python benchmarks/bench_static_filter.py \
        [--count N] [--seed S] [--jobs N] [--runs N] [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import shutil
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.corpus import CorpusConfig, run_corpus  # noqa: E402
from repro.narada import (  # noqa: E402
    ArtifactCache,
    Narada,
    PipelineConfig,
    PipelineOrchestrator,
)
from repro.narada.serial import encode_detection, report_digest  # noqa: E402
from repro.subjects import get_subject  # noqa: E402

OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_static.json"

#: Payload schema; bump on any shape change so stale reports are caught
#: by ``perf_regression.py --check`` instead of KeyErrors downstream.
SCHEMA_VERSION = 1

DEFAULT_COUNT = 200
DEFAULT_SEED = 0
DEFAULT_RUNS = 2

#: Minimum fraction of candidate pairs the filter must discharge on the
#: generated corpus for the ranking/budget machinery to pay its way.
REQUIRED_PRUNED_FRACTION = 0.30

PAPER_SUBJECTS = [f"C{i}" for i in range(1, 10)]


def _run_corpus(config, jobs, cache_dir, runs, static_filter):
    start = time.perf_counter()
    with PipelineOrchestrator(
        jobs=jobs,
        cache=ArtifactCache(cache_dir),
        config=PipelineConfig(random_runs=runs, static_filter=static_filter),
    ) as orch:
        result = run_corpus(config, orch)
    return time.perf_counter() - start, result


def _paper_digest(key: str, static_filter: bool, runs: int) -> dict:
    subject = get_subject(key)
    narada = Narada(subject.load(), static_filter=static_filter)
    report = narada.synthesize_for_class(subject.class_name)
    detection = narada.detect(report, random_runs=runs)
    data = encode_detection(detection)
    # The rank annotation is the one field the filter is *allowed* to
    # add; everything else — schedules, races, outcomes, run counts —
    # must be byte-identical between modes.
    for fuzz in data["fuzz_reports"]:
        fuzz["rank_score"] = 0
    return {
        "pairs": report.pair_count,
        "pruned_pairs": report.pruned_pair_count,
        "detected": detection.detected,
        "reproduced": detection.reproduced,
        "digest": report_digest(data),
    }


def run_bench(
    count: int = DEFAULT_COUNT,
    seed: int = DEFAULT_SEED,
    jobs: int = 2,
    runs: int = DEFAULT_RUNS,
    paper_runs: int = 3,
    out_path: pathlib.Path = OUT_PATH,
) -> dict:
    """Corpus on/off/warm + paper-subject identity; write the payload."""
    config = CorpusConfig(seed=seed, count=count).validate()

    cache_on = tempfile.mkdtemp(prefix="repro-bench-static-on-")
    cache_off = tempfile.mkdtemp(prefix="repro-bench-static-off-")
    try:
        on_s, on = _run_corpus(config, jobs, cache_on, runs, True)
        warm_s, warm = _run_corpus(config, jobs, cache_on, runs, True)
        off_s, off = _run_corpus(config, jobs, cache_off, runs, False)
    finally:
        shutil.rmtree(cache_on, ignore_errors=True)
        shutil.rmtree(cache_off, ignore_errors=True)

    paper = {}
    mismatched = []
    for key in PAPER_SUBJECTS:
        with_filter = _paper_digest(key, True, paper_runs)
        without = _paper_digest(key, False, paper_runs)
        paper[key] = {
            "filter_on": with_filter,
            "filter_off": without,
            "identical": with_filter["digest"] == without["digest"],
        }
        if not paper[key]["identical"]:
            mismatched.append(key)

    failures = []
    failures.extend(f"recall (filter on): {p}" for p in on.problems())
    failures.extend(f"recall (filter off): {p}" for p in off.problems())
    if on.pruned_oracle_races:
        failures.append(
            f"soundness: {on.pruned_oracle_races} oracle race(s) "
            "statically pruned"
        )
    if on.pruned_fraction < REQUIRED_PRUNED_FRACTION:
        failures.append(
            f"pruned fraction: {on.pruned_fraction:.3f} < required "
            f"{REQUIRED_PRUNED_FRACTION}"
        )
    if on_s >= off_s:
        failures.append(
            f"time: filter-on cold {on_s:.2f}s not faster than "
            f"filter-off {off_s:.2f}s"
        )
    if mismatched:
        failures.append(
            "paper identity: detection payloads differ filter-on vs "
            f"filter-off for {', '.join(mismatched)}"
        )
    if on.digests != warm.digests:
        failures.append(
            "determinism: warm-cache digests differ from cold (filter on)"
        )

    payload = {
        "schema_version": SCHEMA_VERSION,
        "scenario": {
            "count": count,
            "seed": seed,
            "random_runs": runs,
            "paper_runs": paper_runs,
            "jobs": jobs,
            "templates": list(config.templates),
        },
        "machine": {
            "cpu_count": os.cpu_count() or 1,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "times_s": {
            "filter_on_cold": round(on_s, 3),
            "filter_on_warm": round(warm_s, 3),
            "filter_off_cold": round(off_s, 3),
        },
        "speedups": {
            "on_vs_off": round(off_s / on_s, 2) if on_s > 0 else None,
            "warm_vs_cold": round(on_s / warm_s, 2) if warm_s > 0 else None,
        },
        "required": {
            "recall": 1.0,
            "pruned_oracle_races": 0,
            "pruned_fraction": REQUIRED_PRUNED_FRACTION,
        },
        "metrics": {
            "subjects": on.subjects,
            "oracle_races": on.oracle_races,
            "recall_on": round(on.recall, 4),
            "recall_off": round(off.recall, 4),
            "candidate_pairs": on.candidate_pairs,
            "pruned_pairs": on.pruned_pairs,
            "pruned_fraction": round(on.pruned_fraction, 4),
            "pruned_oracle_races": on.pruned_oracle_races,
            "detected_on": on.detected_races,
            "detected_off": off.detected_races,
        },
        "paper_subjects": paper,
        "failures": failures,
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _summarize(payload: dict) -> str:
    scenario = payload["scenario"]
    times = payload["times_s"]
    metrics = payload["metrics"]
    identical = sum(
        1 for entry in payload["paper_subjects"].values() if entry["identical"]
    )
    lines = [
        "static pre-filter ({} subject(s), seed={}, runs={}, jobs={})".format(
            scenario["count"],
            scenario["seed"],
            scenario["random_runs"],
            scenario["jobs"],
        ),
        "  filter on  (cold) {:8.2f}s".format(times["filter_on_cold"]),
        "  filter on  (warm) {:8.2f}s  ({}x vs cold)".format(
            times["filter_on_warm"], payload["speedups"]["warm_vs_cold"]
        ),
        "  filter off (cold) {:8.2f}s  (filter saves {}x)".format(
            times["filter_off_cold"], payload["speedups"]["on_vs_off"]
        ),
        "  pruned {}/{} candidate pairs ({:.1%}), {} oracle race(s) lost".format(
            metrics["pruned_pairs"],
            metrics["candidate_pairs"],
            metrics["pruned_fraction"],
            metrics["pruned_oracle_races"],
        ),
        "  recall on/off: {} / {}".format(
            metrics["recall_on"], metrics["recall_off"]
        ),
        "  paper subjects byte-identical on vs off: {}/{}".format(
            identical, len(payload["paper_subjects"])
        ),
    ]
    for failure in payload["failures"]:
        lines.append(f"  GATE FAILED: {failure}")
    return "\n".join(lines)


def test_static_filter_smoke(tmp_path):
    """40-subject smoke: soundness, pruned-fraction, and identity gates."""
    payload = run_bench(
        count=40,
        jobs=1,
        runs=3,
        out_path=tmp_path / "BENCH_static_smoke.json",
    )
    try:
        from conftest import report_table

        report_table("static_filter_smoke", _summarize(payload))
    except ImportError:  # standalone collection
        pass
    assert payload["metrics"]["recall_on"] == 1.0
    assert payload["metrics"]["pruned_oracle_races"] == 0
    assert (
        payload["metrics"]["pruned_fraction"] >= REQUIRED_PRUNED_FRACTION
    )
    assert all(
        entry["identical"] for entry in payload["paper_subjects"].values()
    )
    assert not payload["failures"], payload["failures"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=DEFAULT_COUNT)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--runs", type=int, default=DEFAULT_RUNS)
    parser.add_argument(
        "--quick", action="store_true",
        help="40-subject sweep instead of the full corpus",
    )
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args(argv)
    payload = run_bench(
        count=40 if args.quick else args.count,
        seed=args.seed,
        jobs=args.jobs,
        runs=args.runs,
        out_path=args.out,
    )
    print(_summarize(payload))
    print(f"wrote {args.out}")
    return 1 if payload["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
