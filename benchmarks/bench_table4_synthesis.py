"""Table 4: synthesized test count and synthesis time per class.

Benchmarks the complete synthesis pipeline (seed execution + trace
analysis + pair generation + context derivation + test synthesis) for
every subject, and renders the Table-4 comparison.

Shape claims checked (absolute counts differ — our re-implemented
subjects and seed suites exercise more accesses; see EXPERIMENTS.md):

* every class yields racing pairs and at least one synthesized test,
* tests never exceed pairs (deduplication works),
* C5 (fully unsynchronized) yields the most pairs; C8/C9 the fewest,
* total synthesis stays well under the paper's four minutes.
"""

import pytest
from conftest import report_table

from _pipeline_cache import all_keys, synthesis_for
from repro.narada import Narada
from repro.report import format_table4
from repro.subjects import all_subjects


@pytest.mark.parametrize("key", all_keys())
def test_synthesis_per_class(benchmark, key):
    subject, _, cached_report = synthesis_for(key)

    def run_pipeline():
        narada = Narada(subject.load())
        return narada.synthesize_for_class(subject.class_name)

    report = benchmark.pedantic(run_pipeline, rounds=3, iterations=1)
    assert report.pair_count == cached_report.pair_count
    assert report.pair_count > 0
    assert 0 < report.test_count <= report.pair_count


def test_table4_render(benchmark):
    rows = []
    for subject in all_subjects():
        _, _, report = synthesis_for(subject.key)
        rows.append((subject, report))
    benchmark.pedantic(lambda: format_table4(rows), rounds=5, iterations=1)

    by_key = {subject.key: report for subject, report in rows}
    # Ordering shape from the paper: the unsynchronized index dominates,
    # the small classes stay small.
    assert by_key["C5"].pair_count == max(r.pair_count for r in by_key.values())
    assert by_key["C8"].pair_count < by_key["C1"].pair_count
    assert by_key["C9"].pair_count < by_key["C2"].pair_count
    # The paper synthesizes everything in under 4 minutes; we must too.
    assert sum(r.seconds for r in by_key.values()) < 240.0

    report_table("table4_synthesis", format_table4(rows))
