"""Emit each subject's synthesized tests as a standalone MiniJ suite.

The paper's deliverable *is* a multithreaded test suite.  This benchmark
produces that artifact: for every subject, the synthesized tests are
emitted as self-contained MiniJ source (seed slices + ``fork`` blocks),
written to ``benchmarks/out/suites/<key>.minij``, reloaded, and a sample
is executed to confirm the standalone form still races.
"""

import pathlib

from conftest import report_table

from _pipeline_cache import synthesis_for, all_keys
from repro.detect import FastTrackDetector
from repro.lang import load
from repro.runtime import Execution, RandomScheduler, VM
from repro.synth.emit import emit_standalone_program

SUITES_DIR = pathlib.Path(__file__).parent / "out" / "suites"
PER_SUBJECT = 10
SAMPLE_RUNS = 4


def run_standalone_test(table, name):
    races = set()
    for seed in range(SAMPLE_RUNS):
        vm = VM(table)
        detector = FastTrackDetector()
        test = table.program.test_decl(name)
        execution = Execution(vm, listeners=(detector,))
        execution.spawn(
            lambda ctx, body=test.body.stmts: vm.interp.run_client_stmts(
                body, ctx, {}
            )
        )
        result = execution.run(RandomScheduler(seed))
        assert result.completed and not result.faults, (name, result.faults)
        races |= detector.races.static_keys()
    return races


def test_emit_suites(benchmark):
    SUITES_DIR.mkdir(parents=True, exist_ok=True)

    def build():
        rows = []
        for key in all_keys():
            subject, narada, report = synthesis_for(key)
            tests = report.tests[:PER_SUBJECT]
            source = emit_standalone_program(narada.table, tests)
            (SUITES_DIR / f"{key}.minij").write_text(source)
            table = load(source)  # the emitted suite must load cleanly
            racy = 0
            for test in tests[:3]:
                if run_standalone_test(table, test.name):
                    racy += 1
            rows.append((key, len(tests), len(source.splitlines()), racy))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    # Every subject's standalone sample exposes at least one race except
    # C4 (whose tests mostly serialize by design, Fig. 14).
    for key, _, _, racy in rows:
        if key != "C4":
            assert racy >= 1, key

    report_table(
        "emitted_suites",
        "\n".join(
            [
                "Standalone regression suites (benchmarks/out/suites/*.minij)",
                f"{'class':<7}{'tests':>7}{'LoC':>7}{'racy sample':>13}",
                "-" * 36,
                *[
                    f"{key:<7}{tests:>7}{loc:>7}{racy:>10}/3"
                    for key, tests, loc, racy in rows
                ],
            ]
        ),
    )
