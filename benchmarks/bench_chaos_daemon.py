"""Deterministic daemon chaos harness: writes BENCH_chaos.json.

Every scenario spins up an in-process :class:`ReproDaemon` and injects
one failure mode — sha-keyed worker SIGKILLs mid-request, ENOSPC on
cache writes, torn and oversize protocol frames, slow-client stalls,
admission floods, expired deadlines, an RSS budget breach, a fully
wedged pool, and corrupted spill chunks — then gates that:

* the daemon never crashes or deadlocks (every scenario ends with a
  successful ``ping`` on a fresh connection);
* every shed/deadline/protocol response is a *structured* error frame
  (``error_code`` from :data:`repro.narada.serial.ERROR_CODES`), never
  a hang or a bare connection reset;
* post-recovery pipeline results are digest-identical to a clean
  one-shot direct :class:`PipelineOrchestrator` run — injected faults
  may cost retries, never answers;
* the armed watchdogs (recv deadlines, admission, deadline tokens, the
  RSS governor) cost < 5% per-request service latency (min-of-many
  no-op round-trips) versus a disarmed daemon.

All injection is deterministic (sha-keyed draws from
:class:`repro.narada.faults.FaultPlan`), so a failing scenario replays
bit-identically under a debugger.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos_daemon.py [--quick]
"""

from __future__ import annotations

import argparse
import contextlib
import itertools
import json
import os
import pathlib
import platform
import shutil
import socket
import struct
import sys
import tempfile
import threading
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.lang import load  # noqa: E402
from repro.narada import (  # noqa: E402
    ArtifactCache,
    DaemonClient,
    FaultInjector,
    FaultPlan,
    PipelineConfig,
    PipelineOrchestrator,
    ReproDaemon,
    subject_specs,
)
from repro.narada.daemon import MAX_FRAME_BYTES, recv_frame  # noqa: E402
from repro.runtime import VM, Execution, RoundRobinScheduler  # noqa: E402
from repro.subjects import get_subject  # noqa: E402
from repro.trace.columnar import ColumnarRecorder  # noqa: E402
from repro.trace.spill import SpillingRecorder  # noqa: E402

OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_chaos.json"

#: Payload schema; bump on any shape change so stale reports are caught
#: by ``perf_regression.py --check``.
SCHEMA_VERSION = 1

DEFAULT_SUBJECTS = ["C1", "C8"]
DEFAULT_RUNS = 2

#: Armed watchdogs must cost < this fraction of warm-path latency.
MAX_OVERHEAD_PCT = 5.0
#: ... with this absolute slack, so micro-latency noise cannot fail the
#: gate on a machine where a warm request is a handful of milliseconds.
OVERHEAD_EPSILON_S = 0.002

_SOCKET_COUNTER = itertools.count()


@contextlib.contextmanager
def _daemon(workdir: str, **kwargs):
    """A served in-process daemon on a fresh unix socket; drained after."""
    socket_path = os.path.join(
        workdir, f"daemon-{next(_SOCKET_COUNTER)}.sock"
    )
    daemon = ReproDaemon(socket_path=socket_path, **kwargs)
    daemon.bind()
    server = threading.Thread(target=daemon.serve_forever, daemon=True)
    server.start()
    try:
        yield daemon
    finally:
        daemon.initiate_drain()
        server.join(timeout=30)
        if server.is_alive():
            raise RuntimeError("daemon failed to drain (deadlock?)")


def _request(daemon: ReproDaemon, payload: dict) -> dict:
    with DaemonClient(socket_path=daemon.socket_path) as client:
        return client.request(payload)


def _ping_ok(daemon: ReproDaemon) -> bool:
    """The liveness gate every scenario ends with: a fresh connection."""
    try:
        return _request(daemon, {"op": "ping"}).get("ok") is True
    except (ConnectionError, OSError):
        return False


def _raw_connect(daemon: ReproDaemon) -> socket.socket:
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(daemon.socket_path)
    return sock


def _digests(response: dict) -> dict:
    return {
        name: entry["digest"]
        for name, entry in response["subjects"].items()
    }


def _direct_digests(subjects, runs) -> dict:
    """Clean one-shot ground truth: inline, no cache, no daemon."""
    config = PipelineConfig(random_runs=runs)
    specs = subject_specs([get_subject(k) for k in subjects])
    with PipelineOrchestrator(jobs=1, cache=None, config=config) as orch:
        return {o.spec.name: o.digest() for o in orch.run(specs)}


# ----------------------------------------------------------------------
# Scenarios.  Each returns {"pass": bool, "failures": [...], ...detail}.


def _scenario(name, failures, **detail) -> dict:
    return {"name": name, "pass": not failures, "failures": failures, **detail}


def scenario_clean_and_overhead(workdir, subjects, runs, repeats, direct):
    """Digest identity through a fully-armed daemon + the < 5% gate.

    The overhead gate is measured on no-op requests (``sleep 0``),
    min-of-many: that round-trip is exactly what arming the watchdogs
    can slow — framing, admission, token creation, governor check,
    post-run maintenance — with none of the pipeline work whose cache
    replay adds tens of milliseconds of scheduling noise per sample.
    Warm ``detect`` latency is recorded alongside for the trend line.
    """
    failures = []
    cache_dir = os.path.join(workdir, "cache-clean")
    warm_mins = {}
    noop_mins = {}
    digests = None
    for mode, kwargs in (
        ("disarmed", dict(recv_timeout_s=None)),
        (
            "armed",
            dict(
                recv_timeout_s=30.0,
                default_deadline_s=300.0,
                memory_budget_mb=1e6,  # governor thread armed, never trips
            ),
        ),
    ):
        with _daemon(
            workdir,
            jobs=2,
            cache=ArtifactCache(cache_dir),
            base_config=PipelineConfig(random_runs=runs),
            **kwargs,
        ) as daemon:
            request = {"op": "detect", "subjects": subjects, "runs": runs}
            warmup = _request(daemon, request)  # cold (or disk-warm) run
            if not warmup.get("ok"):
                failures.append(f"{mode}: detect failed: {warmup.get('error')}")
                continue
            if mode == "armed":
                digests = _digests(warmup)
            times = []
            for _ in range(repeats):
                start = time.perf_counter()
                response = _request(daemon, request)
                times.append(time.perf_counter() - start)
                if not response.get("ok"):
                    failures.append(f"{mode}: warm request failed")
                    break
            warm_mins[mode] = min(times)
            noop = []
            with DaemonClient(socket_path=daemon.socket_path) as client:
                for _ in range(max(50, repeats * 20)):
                    start = time.perf_counter()
                    client.request({"op": "sleep", "seconds": 0.0})
                    noop.append(time.perf_counter() - start)
            noop_mins[mode] = min(noop)
            if not _ping_ok(daemon):
                failures.append(f"{mode}: daemon unresponsive after run")
    if digests is not None and digests != direct:
        failures.append(
            "digest identity: armed daemon differs from direct run"
        )
    overhead_pct = None
    if "armed" in noop_mins and "disarmed" in noop_mins:
        delta = noop_mins["armed"] - noop_mins["disarmed"]
        overhead_pct = 100.0 * delta / noop_mins["disarmed"]
        if overhead_pct >= MAX_OVERHEAD_PCT and delta >= OVERHEAD_EPSILON_S:
            failures.append(
                f"armed overhead {overhead_pct:.1f}% >= {MAX_OVERHEAD_PCT}%"
                f" (disarmed {noop_mins['disarmed']:.6f}s,"
                f" armed {noop_mins['armed']:.6f}s per no-op request)"
            )
    return _scenario(
        "clean_and_overhead",
        failures,
        warm_detect_min_s={k: round(v, 4) for k, v in warm_mins.items()},
        noop_min_s={k: round(v, 6) for k, v in noop_mins.items()},
        overhead_pct=(
            None if overhead_pct is None else round(overhead_pct, 1)
        ),
        digests=digests,
    )


def scenario_worker_kills(workdir, subjects, runs, direct):
    """sha-keyed SIGKILL-grade worker deaths mid-request; answers hold."""
    failures = []
    with _daemon(
        workdir,
        jobs=2,
        cache=None,
        base_config=PipelineConfig(
            random_runs=runs,
            fault_inject="crash:0.35",
            max_retries=6,
            retry_backoff=0.0,
        ),
    ) as daemon:
        response = _request(
            daemon, {"op": "detect", "subjects": subjects, "runs": runs}
        )
        if not response.get("ok"):
            failures.append(f"detect failed under crashes: {response.get('error')}")
        else:
            if _digests(response) != direct:
                failures.append("digests drifted under injected worker kills")
            counters = response["ledger"]["counters"]
            if counters["retries"] == 0 and counters["pool_respawns"] == 0:
                failures.append(
                    "injection inert: no retries or respawns recorded"
                )
        if not _ping_ok(daemon):
            failures.append("daemon unresponsive after worker kills")
        respawns = (
            response.get("ledger", {}).get("counters", {}).get("pool_respawns")
        )
    return _scenario("worker_kills", failures, pool_respawns=respawns)


def scenario_enospc(workdir, subjects, runs, direct):
    """ENOSPC on every other cache write: results unchanged, writes shed."""
    failures = []
    cache = ArtifactCache(os.path.join(workdir, "cache-enospc"))
    with _daemon(
        workdir,
        jobs=2,
        cache=cache,
        base_config=PipelineConfig(
            random_runs=runs, fault_inject="enospc:0.7", retry_backoff=0.0
        ),
    ) as daemon:
        response = _request(
            daemon, {"op": "detect", "subjects": subjects, "runs": runs}
        )
        if not response.get("ok"):
            failures.append(f"detect failed under ENOSPC: {response.get('error')}")
        elif _digests(response) != direct:
            failures.append("digests drifted under injected ENOSPC")
        if cache.stats.write_errors == 0:
            failures.append("injection inert: no cache write errors recorded")
        if not _ping_ok(daemon):
            failures.append("daemon unresponsive after ENOSPC")
    return _scenario(
        "enospc", failures, cache_write_errors=cache.stats.write_errors
    )


def scenario_torn_frame(workdir):
    """A frame truncated by disconnect is counted and contained."""
    failures = []
    with _daemon(workdir, jobs=1, recv_timeout_s=2.0) as daemon:
        sock = _raw_connect(daemon)
        sock.sendall(struct.pack(">I", 512) + b"only-a-fragment")
        sock.close()
        deadline = time.monotonic() + 10
        while (
            daemon.stats.protocol_errors == 0 and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        if daemon.stats.protocol_errors != 1:
            failures.append("torn frame not recorded as a protocol error")
        if not _ping_ok(daemon):
            failures.append("daemon unresponsive after torn frame")
    return _scenario("torn_frame", failures)


def scenario_oversize_frame(workdir):
    """A length prefix beyond 64MB draws a structured protocol frame."""
    failures = []
    with _daemon(workdir, jobs=1, recv_timeout_s=2.0) as daemon:
        with _raw_connect(daemon) as sock:
            sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            sock.settimeout(10.0)
            try:
                frame = recv_frame(sock)
            except Exception as error:  # noqa: BLE001 - any escape fails the gate
                frame = None
                failures.append(f"no structured reply to oversize frame: {error!r}")
            if frame is not None and frame.get("error_code") != "protocol":
                failures.append(f"expected protocol error frame, got {frame}")
        if not _ping_ok(daemon):
            failures.append("daemon unresponsive after oversize frame")
    return _scenario("oversize_frame", failures)


def scenario_slow_client(workdir):
    """A stalled sender is torn down on deadline; others are served."""
    failures = []
    with _daemon(workdir, jobs=1, recv_timeout_s=1.0) as daemon:
        stalled = _raw_connect(daemon)
        stalled.sendall(b"\x00")  # 1 of 4 header bytes, then nothing
        # A concurrent healthy client must be served while the stall is
        # still inside its recv window.
        start = time.perf_counter()
        if not _ping_ok(daemon):
            failures.append("healthy client starved by a slow client")
        healthy_latency = time.perf_counter() - start
        stalled.settimeout(10.0)
        torn_down_at = time.monotonic()
        try:
            frame = recv_frame(stalled)
            if frame.get("error_code") != "protocol":
                failures.append(f"expected protocol frame, got {frame}")
        except Exception as error:  # noqa: BLE001 - any escape fails the gate
            failures.append(f"stalled connection not answered: {error!r}")
        finally:
            stalled.close()
        if time.monotonic() - torn_down_at > 8.0:
            failures.append("slow-loris teardown exceeded the recv deadline")
    return _scenario(
        "slow_client", failures, healthy_latency_s=round(healthy_latency, 4)
    )


def scenario_admission_shed(workdir):
    """Beyond the queue bound: structured `busy` + retry hint, no hangs."""
    failures = []
    with _daemon(workdir, jobs=1, max_queue_depth=2) as daemon:
        holders = [
            DaemonClient(socket_path=daemon.socket_path) for _ in range(2)
        ]
        parked: list[dict] = []
        threads = [
            threading.Thread(
                target=lambda c=c: parked.append(
                    c.request({"op": "sleep", "seconds": 1.0})
                )
            )
            for c in holders
        ]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 10
        while (
            daemon.admission.occupancy < 2 and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        shed = _request(daemon, {"op": "sleep", "seconds": 0.1})
        for t in threads:
            t.join()
        for c in holders:
            c.close()
        if shed.get("error_code") != "busy":
            failures.append(f"expected busy shed, got {shed}")
        elif shed.get("retry_after_s") is None or shed["retry_after_s"] <= 0:
            failures.append("busy shed carries no retry-after hint")
        if not all(r.get("ok") for r in parked):
            failures.append("queued requests lost while shedding")
        if not _ping_ok(daemon):
            failures.append("daemon unresponsive after admission flood")
    return _scenario(
        "admission_shed", failures, shed_busy=daemon.admission.shed_busy
    )


def scenario_deadline(workdir):
    """A deadline cancels a 30s op in well under a second of overrun."""
    failures = []
    with _daemon(workdir, jobs=1) as daemon:
        start = time.perf_counter()
        response = _request(
            daemon, {"op": "sleep", "seconds": 30.0, "deadline_s": 0.3}
        )
        elapsed = time.perf_counter() - start
        if response.get("error_code") != "deadline_exceeded":
            failures.append(f"expected deadline_exceeded, got {response}")
        if elapsed > 5.0:
            failures.append(f"cancellation took {elapsed:.1f}s (deadline 0.3s)")
        if not _ping_ok(daemon):
            failures.append("daemon unresponsive after deadline cancel")
    return _scenario("deadline", failures, elapsed_s=round(elapsed, 3))


def scenario_rss_shed(workdir):
    """Over RSS budget: overloaded sheds; under it: recycle + recover."""
    failures = []
    with _daemon(workdir, jobs=1, memory_budget_mb=1.0) as daemon:
        daemon.governor.poll_once()  # deterministic: don't wait 2s
        shed = _request(daemon, {"op": "sleep", "seconds": 0.01})
        if shed.get("error_code") != "overloaded":
            failures.append(f"expected overloaded shed, got {shed}")
        daemon.governor.budget_mb = 1e9
        daemon.governor.poll_once()
        recovered = _request(daemon, {"op": "sleep", "seconds": 0.01})
        if not recovered.get("ok"):
            failures.append(f"no recovery after budget raise: {recovered}")
        if daemon.governor.recycles == 0:
            failures.append("pool recycle never applied after the breach")
        if not _ping_ok(daemon):
            failures.append("daemon unresponsive after RSS shed")
    return _scenario(
        "rss_shed", failures, recycles=daemon.governor.recycles
    )


def scenario_wedged_pool(workdir, runs):
    """Every unit crashes every attempt: rebuild fires, daemon survives."""
    failures = []
    with _daemon(
        workdir,
        jobs=2,
        cache=None,
        base_config=PipelineConfig(
            random_runs=runs,
            fault_inject="crash:1.0",
            max_retries=2,
            retry_backoff=0.0,
        ),
        max_consecutive_worker_deaths=3,
    ) as daemon:
        response = _request(
            daemon, {"op": "detect", "subjects": ["C1", "C8"], "runs": runs}
        )
        if not response.get("ok"):
            failures.append(f"wedged run did not answer: {response.get('error')}")
        elif not response["ledger"]["failures"]:
            failures.append("crash:1.0 produced no recorded failures")
        rebuilds = daemon._pool.rebuilds if daemon._pool is not None else 0
        if rebuilds == 0:
            failures.append("wedge detector never rebuilt the pool")
        if not _ping_ok(daemon):
            failures.append("daemon unresponsive after wedged pool")
    return _scenario("wedged_pool", failures, rebuilds=rebuilds)


_SPIN = """
class Worker {
  int acc;
  void spin(int n) {
    int i = 0;
    while (i < n) {
      this.acc = this.acc + i;
      i = i + 1;
    }
  }
}
test Seed { Worker w = new Worker(); }
"""


def _record_spin(recorder, n=40):
    table = load(_SPIN)
    vm = VM(table)
    _, env = vm.run_test("Seed")
    worker = env["w"]
    execution = Execution(vm, listeners=(recorder,))
    for _ in range(2):
        execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, worker, "spin", [n])
        )
    assert execution.run(
        RoundRobinScheduler(), max_steps=100 * n + 10_000
    ).completed
    return recorder.packed


def scenario_spill_corrupt():
    """A corrupted spill chunk is *detectable*: its digest diverges."""
    failures = []
    reference = _record_spin(ColumnarRecorder("spin"))
    clean = _record_spin(SpillingRecorder("spin", spill_rows=16))
    corrupted = _record_spin(
        SpillingRecorder(
            "spin",
            spill_rows=16,
            fault_injector=FaultInjector(FaultPlan(spill=1.0)),
        )
    )
    if clean.digest() != reference.digest():
        failures.append("clean spilled trace digest diverged (recorder bug)")
    if corrupted.digest() == reference.digest():
        failures.append(
            "corrupted spill chunk went undetected (digest unchanged)"
        )
    return _scenario("spill_corrupt", failures)


# ----------------------------------------------------------------------
# Driver.


def run_bench(
    subjects=None,
    runs: int = DEFAULT_RUNS,
    repeats: int = 5,
    out_path: pathlib.Path = OUT_PATH,
) -> dict:
    subjects = subjects or DEFAULT_SUBJECTS
    workdir = tempfile.mkdtemp(prefix="repro-bench-chaos-")
    try:
        direct = _direct_digests(subjects, runs)
        scenarios = [
            scenario_clean_and_overhead(
                workdir, subjects, runs, repeats, direct
            ),
            scenario_worker_kills(workdir, subjects, runs, direct),
            scenario_enospc(workdir, subjects, runs, direct),
            scenario_torn_frame(workdir),
            scenario_oversize_frame(workdir),
            scenario_slow_client(workdir),
            scenario_admission_shed(workdir),
            scenario_deadline(workdir),
            scenario_rss_shed(workdir),
            scenario_wedged_pool(workdir, runs),
            scenario_spill_corrupt(),
        ]
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    failures = [
        f"{s['name']}: {failure}" for s in scenarios for failure in s["failures"]
    ]
    payload = {
        "schema_version": SCHEMA_VERSION,
        "scenario": {
            "subjects": subjects,
            "random_runs": runs,
            "overhead_repeats": repeats,
        },
        "machine": {
            "cpu_count": os.cpu_count() or 1,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "required": {
            "max_overhead_pct": MAX_OVERHEAD_PCT,
            "overhead_epsilon_s": OVERHEAD_EPSILON_S,
        },
        "scenarios": {s["name"]: s for s in scenarios},
        "failures": failures,
        "pass": not failures,
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def _summarize(payload: dict) -> str:
    lines = [
        "daemon chaos harness ({}; runs={})".format(
            ",".join(payload["scenario"]["subjects"]),
            payload["scenario"]["random_runs"],
        )
    ]
    for name, scenario in sorted(payload["scenarios"].items()):
        verdict = "ok" if scenario["pass"] else "FAIL"
        extra = ""
        if name == "clean_and_overhead" and scenario.get("overhead_pct") is not None:
            extra = f"  (armed overhead {scenario['overhead_pct']}%)"
        lines.append(f"  {name:20s} {verdict}{extra}")
    for failure in payload["failures"]:
        lines.append(f"  GATE FAILED: {failure}")
    return "\n".join(lines)


def test_chaos_smoke(tmp_path):
    """Reduced chaos sweep: every scenario must pass."""
    payload = run_bench(
        subjects=["C1"],
        repeats=3,
        out_path=tmp_path / "BENCH_chaos_smoke.json",
    )
    try:
        from conftest import report_table

        report_table("chaos_daemon_smoke", _summarize(payload))
    except ImportError:  # standalone collection
        pass
    assert payload["pass"], "; ".join(payload["failures"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="single subject, fewer overhead repeats (the CI smoke run)",
    )
    parser.add_argument("--subjects", metavar="C1,C8", default=None)
    parser.add_argument("--runs", type=int, default=DEFAULT_RUNS)
    parser.add_argument("--out", default=str(OUT_PATH))
    args = parser.parse_args(argv)
    subjects = (
        [k.strip() for k in args.subjects.split(",") if k.strip()]
        if args.subjects
        else (["C1"] if args.quick else None)
    )
    payload = run_bench(
        subjects=subjects,
        runs=args.runs,
        repeats=3 if args.quick else 5,
        out_path=pathlib.Path(args.out),
    )
    print(_summarize(payload))
    print(f"report: {args.out}")
    if not payload["pass"]:
        print("CHAOS GATE FAILED")
        return 1
    print("chaos gate: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
