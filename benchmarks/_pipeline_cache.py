"""Session-wide cache of per-subject pipeline results.

Several benchmarks need the same synthesis/detection artifacts; this
module used to memoize them for one pytest session only.  It is now a
thin facade over the pipeline orchestrator, which adds two things:

* a **persistent** content-addressed artifact cache (default
  ``benchmarks/out/.pipeline-cache``, override with ``$REPRO_CACHE_DIR``)
  so a second ``pytest benchmarks/`` run replays synthesis/detection
  from disk instead of re-fuzzing every class;
* optional fan-out: set ``REPRO_JOBS=N`` to run cold pipeline work on a
  process pool (results are bit-identical to the serial order).

Detection uses a fixed, modest fuzzing budget — enough to reproduce the
tables' shape while keeping the whole harness in the minutes range.
"""

from __future__ import annotations

import os
import pathlib

from repro.narada import (
    ArtifactCache,
    DetectionReport,
    Narada,
    PipelineConfig,
    PipelineOrchestrator,
    SubjectSpec,
    SynthesisReport,
)
from repro.subjects import SubjectInfo, all_subjects

#: Random schedules per synthesized test during detection.
DETECT_RANDOM_RUNS = 5

_synthesis: dict[str, tuple[SubjectInfo, Narada, SynthesisReport]] = {}
_detection: dict[str, DetectionReport] = {}


def _cache_dir() -> pathlib.Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path(__file__).parent / "out" / ".pipeline-cache"


def _orchestrator() -> PipelineOrchestrator:
    return PipelineOrchestrator(
        jobs=int(os.environ.get("REPRO_JOBS", "1")),
        cache=ArtifactCache(_cache_dir()),
        config=PipelineConfig(random_runs=DETECT_RANDOM_RUNS),
    )


def _spec(subject: SubjectInfo) -> SubjectSpec:
    return SubjectSpec(
        name=subject.key,
        source=subject.source,
        target_class=subject.class_name,
    )


def synthesis_for(key: str) -> tuple[SubjectInfo, Narada, SynthesisReport]:
    if key not in _synthesis:
        subject = next(s for s in all_subjects() if s.key == key)
        # Built from source text so the table's static site ids match
        # the orchestrator's workers and cached artifacts exactly.
        narada = Narada(subject.source)
        with _orchestrator() as orch:
            report = orch.synthesize(_spec(subject))
        _synthesis[key] = (subject, narada, report)
    return _synthesis[key]


def detection_for(key: str) -> DetectionReport:
    if key not in _detection:
        subject, _, report = synthesis_for(key)
        with _orchestrator() as orch:
            _detection[key] = orch.detect(_spec(subject), report)
    return _detection[key]


def all_keys() -> list[str]:
    return [s.key for s in all_subjects()]
