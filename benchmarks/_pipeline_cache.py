"""Session-wide cache of per-subject pipeline results.

Several benchmarks need the same synthesis/detection artifacts; caching
keeps ``pytest benchmarks/`` from re-fuzzing every class once per table.
Detection here uses a fixed, modest fuzzing budget — enough to reproduce
the tables' shape while keeping the whole harness in the minutes range.
"""

from __future__ import annotations

from repro.narada import DetectionReport, Narada, SynthesisReport
from repro.subjects import SubjectInfo, all_subjects

#: Random schedules per synthesized test during detection.
DETECT_RANDOM_RUNS = 5

_synthesis: dict[str, tuple[SubjectInfo, Narada, SynthesisReport]] = {}
_detection: dict[str, DetectionReport] = {}


def synthesis_for(key: str) -> tuple[SubjectInfo, Narada, SynthesisReport]:
    if key not in _synthesis:
        subject = next(s for s in all_subjects() if s.key == key)
        narada = Narada(subject.load())
        report = narada.synthesize_for_class(subject.class_name)
        _synthesis[key] = (subject, narada, report)
    return _synthesis[key]


def detection_for(key: str) -> DetectionReport:
    if key not in _detection:
        subject, narada, report = synthesis_for(key)
        _detection[key] = narada.detect(report, random_runs=DETECT_RANDOM_RUNS)
    return _detection[key]


def all_keys() -> list[str]:
    return [s.key for s in all_subjects()]
