"""Ablation: the conservative unprotectedness definition (§1, §4).

The paper treats an access as unprotected whenever the accessed object's
own monitor is not held — even if the thread holds some other lock.  The
ablated variant considers any held lock protective.  On the wrapper
subjects (C1, C2) the inner-queue accesses always happen under the
wrapper's lock, so the strict variant finds no racing pairs at all and
misses every wrong-mutex bug.
"""

import pytest
from conftest import report_table

from repro.analysis.analyzer import SequentialTraceAnalyzer
from repro.narada import Narada
from repro.pairs import generate_pairs
from repro.subjects import get_subject


def pairs_with(key, strict):
    subject = get_subject(key)
    narada = Narada(subject.load())
    analyzer = SequentialTraceAnalyzer(strict_unprotected=strict)
    analysis = analyzer.analyze_all(narada.run_seed_suite())
    return subject, generate_pairs(analysis, target_class=subject.class_name)


@pytest.mark.parametrize("key", ["C1", "C2", "C5"])
def test_ablation_unprotected(benchmark, key):
    subject, conservative = benchmark.pedantic(
        lambda: pairs_with(key, strict=False), rounds=1, iterations=1
    )
    _, strict = pairs_with(key, strict=True)

    if key in ("C1", "C2"):
        # Wrapper bugs: every inner access holds the (wrong) wrapper
        # lock, so the strict definition sees nothing racy on the inner
        # state at all.
        inner = {
            "C1": "CoalescedWriteBehindQueue",
            "C2": "ArrayCollection",
        }[key]
        conservative_inner = [p for p in conservative if p.field[0] == inner]
        strict_inner = [p for p in strict if p.field[0] == inner]
        assert conservative_inner
        assert not strict_inner
    else:
        # C5 holds no locks anywhere: the definitions agree.
        assert {p.static_id() for p in strict} == {
            p.static_id() for p in conservative
        }


def test_ablation_unprotected_table(benchmark):
    rows = []
    for key in ("C1", "C2", "C5"):
        _, conservative = pairs_with(key, strict=False)
        _, strict = pairs_with(key, strict=True)
        rows.append((key, len(conservative), len(strict)))
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    report_table(
        "ablation_unprotected",
        "\n".join(
            [
                "Ablation: conservative vs strict unprotectedness (pairs)",
                f"{'class':<8}{'conservative (paper)':>22}{'strict':>9}",
                "-" * 40,
                *[
                    f"{key:<8}{conservative:>22}{strict:>9}"
                    for key, conservative, strict in rows
                ],
            ]
        ),
    )
