"""§5 comparison: ConTeGe random search vs Narada's directed synthesis.

The paper reports that ConTeGe detected two thread-safety violations in
C5 and one in C6 (generating 2.9K and 105 tests respectively), and none
in the other classes despite generating 1K-70K tests.

Shape claims checked:

* ConTeGe finds violations in C5 and C6 within the budget,
* ConTeGe finds nothing in the wrapper subjects C1 and C2 (its single
  shared CUT instance serializes on the wrapper monitor),
* Narada exposes races in every compared class with far fewer tests.
"""

import pytest
from conftest import report_table

from _pipeline_cache import detection_for, synthesis_for
from repro.baseline import ConTeGe
from repro.report import format_contege_comparison

#: (subject, random-test budget) — budgets scaled from the paper's.
BUDGETS = {
    "C1": 400,
    "C2": 400,
    "C5": 1200,
    "C6": 400,
    "C7": 400,
}

_results = {}


def contege_for(key: str):
    if key not in _results:
        subject, narada, _ = synthesis_for(key)
        contege = ConTeGe(narada.table, subject.class_name, seed=1)
        _results[key] = contege.run(max_tests=BUDGETS[key])
    return _results[key]


@pytest.mark.parametrize("key", sorted(BUDGETS))
def test_contege_per_class(benchmark, key):
    subject, narada, _ = synthesis_for(key)

    def run_small():
        return ConTeGe(narada.table, subject.class_name, seed=2).run(max_tests=60)

    benchmark.pedantic(run_small, rounds=1, iterations=1)
    result = contege_for(key)
    assert result.tests_generated > 0


def test_comparison_shape(benchmark):
    rows = []
    for key in sorted(BUDGETS):
        subject, _, _ = synthesis_for(key)
        rows.append((subject, contege_for(key), detection_for(key)))
    benchmark.pedantic(lambda: format_contege_comparison(rows), rounds=3,
                       iterations=1)

    by_key = {subject.key: contege for subject, contege, _ in rows}
    # ConTeGe finds the crashing classes...
    assert by_key["C5"].violation_count >= 1
    assert by_key["C6"].violation_count >= 1
    # ...and misses the wrapper bugs entirely.
    assert by_key["C1"].violation_count == 0
    assert by_key["C2"].violation_count == 0

    # Narada finds races everywhere ConTeGe looked, with fewer tests.
    for subject, contege, narada_detection in rows:
        assert narada_detection.detected >= 1
        assert len(narada_detection.fuzz_reports) < max(
            contege.tests_generated, 100
        )

    report_table("contege_comparison", format_contege_comparison(rows))
