"""End-to-end pipeline benchmark + perf gate: writes BENCH_pipeline.json.

Runs the full Narada pipeline (synthesis + detection) over paper
subjects three ways and compares wall-clock:

* **serial** — ``jobs=1``, no cache: the pre-orchestrator baseline path;
* **parallel cold** — ``jobs=N`` over a fresh artifact cache: process
  pool fan-out of the per-subject pipeline and the per-test fuzz loop;
* **warm cache** — an identical rerun against the now-populated cache:
  every stage replays from content-addressed artifacts.

Three gates:

* the canonical serialized reports must be **byte-identical** across all
  three runs (the orchestrator's determinism contract) — always enforced;
* the warm-cache rerun must be >= 5x faster than the cold run — always
  enforced (cache replay does no pipeline work, so this holds on any
  machine);
* the parallel run must be >= 2.5x faster than serial — enforced only
  when the machine actually has >= 4 CPUs (a process pool cannot beat
  serial on fewer cores; the measured ratio is still recorded).

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline_e2e.py \
        [--subjects C1,C2,...] [--jobs N] [--runs N] [--out PATH]

or via pytest (smoke variant over two subjects): see
``test_pipeline_e2e_smoke`` below.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import shutil
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.narada import (  # noqa: E402
    ArtifactCache,
    PipelineConfig,
    PipelineOrchestrator,
    subject_specs,
)
from repro.subjects import get_subject  # noqa: E402

OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_pipeline.json"

#: Payload schema; bump on any shape change so stale reports are caught
#: by ``perf_regression.py --check`` instead of KeyErrors downstream.
SCHEMA_VERSION = 1

#: Random schedules per synthesized test (modest: relative times matter).
DEFAULT_RUNS = 3

#: Acceptance ratios.
REQUIRED_PARALLEL_SPEEDUP = 2.5
REQUIRED_WARM_SPEEDUP = 5.0

#: Cores needed before the parallel gate is physically meaningful.
PARALLEL_GATE_MIN_CPUS = 4


def _run(specs, jobs, cache, config):
    start = time.perf_counter()
    with PipelineOrchestrator(jobs=jobs, cache=cache, config=config) as orch:
        outcomes = orch.run(specs, detect=True)
    elapsed = time.perf_counter() - start
    return elapsed, outcomes


def run_bench(
    subject_keys: list[str] | None = None,
    jobs: int = 4,
    runs: int = DEFAULT_RUNS,
    out_path: pathlib.Path = OUT_PATH,
) -> dict:
    """Measure serial vs parallel vs warm-cache; write and return payload."""
    if subject_keys is None:
        specs = subject_specs()
    else:
        specs = subject_specs([get_subject(k) for k in subject_keys])
    config = PipelineConfig(random_runs=runs)
    cpu_count = os.cpu_count() or 1

    serial_s, serial = _run(specs, jobs=1, cache=None, config=config)
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cold_s, cold = _run(
            specs, jobs=jobs, cache=ArtifactCache(cache_dir), config=config
        )
        warm_s, warm = _run(
            specs, jobs=jobs, cache=ArtifactCache(cache_dir), config=config
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    digests = {o.spec.name: o.digest() for o in serial}
    identical = (
        digests == {o.spec.name: o.digest() for o in cold}
        and digests == {o.spec.name: o.digest() for o in warm}
    )
    parallel_speedup = serial_s / cold_s
    warm_speedup = cold_s / warm_s
    parallel_gate = cpu_count >= PARALLEL_GATE_MIN_CPUS

    failures = []
    if not identical:
        failures.append(
            "determinism: serialized reports differ across "
            "serial/parallel/warm runs"
        )
    if warm_speedup < REQUIRED_WARM_SPEEDUP:
        failures.append(
            f"warm cache: {warm_speedup:.1f}x < required "
            f"{REQUIRED_WARM_SPEEDUP}x"
        )
    if parallel_gate and parallel_speedup < REQUIRED_PARALLEL_SPEEDUP:
        failures.append(
            f"parallel: {parallel_speedup:.2f}x < required "
            f"{REQUIRED_PARALLEL_SPEEDUP}x (jobs={jobs}, cpus={cpu_count})"
        )

    payload = {
        "schema_version": SCHEMA_VERSION,
        "scenario": {
            "subjects": [spec.name for spec in specs],
            "random_runs": runs,
            "directed": True,
            "jobs": jobs,
        },
        "machine": {
            "cpu_count": cpu_count,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "times_s": {
            "serial": round(serial_s, 3),
            "parallel_cold": round(cold_s, 3),
            "warm_cache": round(warm_s, 3),
        },
        "per_subject_serial_s": {
            o.spec.name: round(o.synthesis.seconds, 3) for o in serial
        },
        "speedups": {
            "parallel_vs_serial": round(parallel_speedup, 2),
            "warm_vs_cold": round(warm_speedup, 2),
        },
        "required": {
            "parallel_vs_serial": REQUIRED_PARALLEL_SPEEDUP,
            "parallel_gate_enforced": parallel_gate,
            "warm_vs_cold": REQUIRED_WARM_SPEEDUP,
        },
        "determinism": {
            "byte_identical": identical,
            "digests": digests,
        },
        "failures": failures,
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _summarize(payload: dict) -> str:
    times = payload["times_s"]
    speedups = payload["speedups"]
    lines = [
        "pipeline e2e ({} subject(s), runs={}, jobs={})".format(
            len(payload["scenario"]["subjects"]),
            payload["scenario"]["random_runs"],
            payload["scenario"]["jobs"],
        ),
        f"  serial        {times['serial']:8.2f}s",
        "  parallel cold {:8.2f}s  ({}x vs serial, gate {})".format(
            times["parallel_cold"],
            speedups["parallel_vs_serial"],
            "on" if payload["required"]["parallel_gate_enforced"] else "off",
        ),
        "  warm cache    {:8.2f}s  ({}x vs cold)".format(
            times["warm_cache"], speedups["warm_vs_cold"]
        ),
        "  byte-identical reports: {}".format(
            payload["determinism"]["byte_identical"]
        ),
    ]
    for failure in payload["failures"]:
        lines.append(f"  GATE FAILED: {failure}")
    return "\n".join(lines)


def test_pipeline_e2e_smoke(tmp_path):
    """Two-subject smoke: determinism + warm-cache gates must hold."""
    payload = run_bench(
        subject_keys=["C1", "C8"],
        jobs=2,
        runs=2,
        out_path=tmp_path / "BENCH_pipeline_smoke.json",
    )
    try:
        from conftest import report_table

        report_table("pipeline_e2e_smoke", _summarize(payload))
    except ImportError:  # standalone collection
        pass
    assert payload["determinism"]["byte_identical"]
    assert payload["speedups"]["warm_vs_cold"] >= REQUIRED_WARM_SPEEDUP
    assert not payload["failures"], payload["failures"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--subjects",
        help="comma-separated subject keys (default: all nine)",
    )
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--runs", type=int, default=DEFAULT_RUNS)
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args(argv)
    keys = args.subjects.split(",") if args.subjects else None
    payload = run_bench(
        subject_keys=keys, jobs=args.jobs, runs=args.runs, out_path=args.out
    )
    print(_summarize(payload))
    print(f"wrote {args.out}")
    return 1 if payload["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
