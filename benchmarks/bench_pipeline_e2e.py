"""End-to-end pipeline benchmark + perf gate: writes BENCH_pipeline.json.

Runs the full Narada pipeline (synthesis + detection) over a generated
corpus (default: the 200-subject procedural corpus, the workload where
parallel dispatch actually matters) four ways and compares wall-clock:

* **serial** — ``jobs=1``, no cache: the pre-orchestrator baseline path;
* **parallel cold** — ``jobs=N`` over a fresh artifact cache: batched
  process-pool fan-out of the per-subject pipeline and per-test fuzz
  loop, batch size auto-tuned from the unit-cost EMA;
* **parallel big-batch** — same, no cache, ``batch_ms`` forced high so
  many units ride per worker round-trip: batch boundaries must not
  change a single byte of output;
* **warm cache** — rerun against the now-populated cache: every stage
  replays from content-addressed artifacts.

Three gates:

* the canonical serialized reports must be **byte-identical** across all
  four runs (the orchestrator's determinism contract; batching changes
  scheduling, never results) — always enforced;
* the warm-cache rerun must be >= 5x faster than the cold run — always
  enforced (cache replay does no pipeline work, so this holds on any
  machine);
* the parallel run must be >= 2.5x faster than serial — enforced
  whenever the machine has >= 4 CPUs (a process pool cannot beat serial
  on fewer cores; the measured ratio is still recorded).

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline_e2e.py \
        [--count N] [--seed N] [--jobs N] [--runs N] [--out PATH]

or via pytest (smoke variant over a small corpus slice): see
``test_pipeline_e2e_smoke`` below.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pathlib
import platform
import shutil
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.corpus.generator import CorpusConfig, generate_corpus  # noqa: E402
from repro.corpus.runner import corpus_specs  # noqa: E402
from repro.narada import (  # noqa: E402
    ArtifactCache,
    PipelineConfig,
    PipelineOrchestrator,
)

OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_pipeline.json"

#: Payload schema; bump on any shape change so stale reports are caught
#: by ``perf_regression.py --check`` instead of KeyErrors downstream.
SCHEMA_VERSION = 2

#: Corpus workload defaults (mirrors ``repro corpus run``).
DEFAULT_COUNT = 200
DEFAULT_SEED = 0

#: Random schedules per synthesized test (modest: relative times matter).
DEFAULT_RUNS = 2

#: batch_ms for the big-batch determinism leg (vs the ~75 ms default).
BIG_BATCH_MS = 500.0

#: Acceptance ratios.
REQUIRED_PARALLEL_SPEEDUP = 2.5
REQUIRED_WARM_SPEEDUP = 5.0

#: Cores needed before the parallel gate is physically meaningful.
PARALLEL_GATE_MIN_CPUS = 4


def _run(specs, jobs, cache, config):
    """One timed leg: stream the corpus, keep only digests + ledger."""
    digests = {}
    start = time.perf_counter()
    with PipelineOrchestrator(jobs=jobs, cache=cache, config=config) as orch:
        for outcome in orch.run_stream(specs, detect=True):
            digests[outcome.spec.name] = outcome.digest()
        ledger = orch.fault_ledger
    elapsed = time.perf_counter() - start
    return elapsed, digests, ledger


def _combined(digests: dict) -> str:
    """One hash over every per-subject digest, in spec (key) order."""
    h = hashlib.sha256()
    for name in sorted(digests):
        h.update(f"{name}={digests[name]}\n".encode())
    return h.hexdigest()


def run_bench(
    count: int = DEFAULT_COUNT,
    seed: int = DEFAULT_SEED,
    jobs: int = 4,
    runs: int = DEFAULT_RUNS,
    out_path: pathlib.Path = OUT_PATH,
) -> dict:
    """Measure serial/parallel/big-batch/warm; write and return payload."""
    subjects = generate_corpus(CorpusConfig(seed=seed, count=count))
    specs = corpus_specs(subjects)
    config = PipelineConfig(random_runs=runs)
    big_batch = PipelineConfig(random_runs=runs, batch_ms=BIG_BATCH_MS)
    cpu_count = os.cpu_count() or 1

    serial_s, serial_digests, _ = _run(specs, jobs=1, cache=None, config=config)
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cold_s, cold_digests, cold_ledger = _run(
            specs, jobs=jobs, cache=ArtifactCache(cache_dir), config=config
        )
        batch_s, batch_digests, _ = _run(
            specs, jobs=jobs, cache=None, config=big_batch
        )
        warm_s, warm_digests, _ = _run(
            specs, jobs=jobs, cache=ArtifactCache(cache_dir), config=config
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    identical = (
        serial_digests == cold_digests
        and serial_digests == batch_digests
        and serial_digests == warm_digests
    )
    parallel_speedup = serial_s / cold_s
    warm_speedup = cold_s / warm_s
    parallel_gate = cpu_count >= PARALLEL_GATE_MIN_CPUS

    failures = []
    if not identical:
        failures.append(
            "determinism: serialized reports differ across "
            "serial/parallel/big-batch/warm runs"
        )
    if warm_speedup < REQUIRED_WARM_SPEEDUP:
        failures.append(
            f"warm cache: {warm_speedup:.1f}x < required "
            f"{REQUIRED_WARM_SPEEDUP}x"
        )
    if parallel_gate and parallel_speedup < REQUIRED_PARALLEL_SPEEDUP:
        failures.append(
            f"parallel: {parallel_speedup:.2f}x < required "
            f"{REQUIRED_PARALLEL_SPEEDUP}x (jobs={jobs}, cpus={cpu_count})"
        )

    payload = {
        "schema_version": SCHEMA_VERSION,
        "scenario": {
            "workload": "generated-corpus",
            "corpus_seed": seed,
            "corpus_count": count,
            "random_runs": runs,
            "directed": True,
            "jobs": jobs,
            "big_batch_ms": BIG_BATCH_MS,
        },
        "machine": {
            "cpu_count": cpu_count,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "times_s": {
            "serial": round(serial_s, 3),
            "parallel_cold": round(cold_s, 3),
            "parallel_big_batch": round(batch_s, 3),
            "warm_cache": round(warm_s, 3),
        },
        "dispatch": {
            "units": cold_ledger.completed,
            "batches": cold_ledger.batches,
            "warm_reuses": cold_ledger.warm_reuses,
        },
        "speedups": {
            "parallel_vs_serial": round(parallel_speedup, 2),
            "warm_vs_cold": round(warm_speedup, 2),
        },
        "required": {
            "parallel_vs_serial": REQUIRED_PARALLEL_SPEEDUP,
            "parallel_gate_enforced": parallel_gate,
            "warm_vs_cold": REQUIRED_WARM_SPEEDUP,
        },
        "determinism": {
            "byte_identical": identical,
            "subjects": len(serial_digests),
            "combined_digest": _combined(serial_digests),
        },
        "failures": failures,
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _summarize(payload: dict) -> str:
    times = payload["times_s"]
    speedups = payload["speedups"]
    dispatch = payload["dispatch"]
    lines = [
        "pipeline e2e (corpus x{}, runs={}, jobs={})".format(
            payload["scenario"]["corpus_count"],
            payload["scenario"]["random_runs"],
            payload["scenario"]["jobs"],
        ),
        f"  serial          {times['serial']:8.2f}s",
        "  parallel cold   {:8.2f}s  ({}x vs serial, gate {})".format(
            times["parallel_cold"],
            speedups["parallel_vs_serial"],
            "on" if payload["required"]["parallel_gate_enforced"] else "off",
        ),
        "  big batch       {:8.2f}s  (batch_ms={})".format(
            times["parallel_big_batch"], payload["scenario"]["big_batch_ms"]
        ),
        "  warm cache      {:8.2f}s  ({}x vs cold)".format(
            times["warm_cache"], speedups["warm_vs_cold"]
        ),
        "  dispatch: {} unit(s) in {} batch(es), {} warm reuse(s)".format(
            dispatch["units"], dispatch["batches"], dispatch["warm_reuses"]
        ),
        "  byte-identical reports: {}".format(
            payload["determinism"]["byte_identical"]
        ),
    ]
    for failure in payload["failures"]:
        lines.append(f"  GATE FAILED: {failure}")
    return "\n".join(lines)


def test_pipeline_e2e_smoke(tmp_path):
    """Small-corpus smoke: determinism + warm-cache gates must hold."""
    payload = run_bench(
        count=12,
        jobs=2,
        runs=2,
        out_path=tmp_path / "BENCH_pipeline_smoke.json",
    )
    try:
        from conftest import report_table

        report_table("pipeline_e2e_smoke", _summarize(payload))
    except ImportError:  # standalone collection
        pass
    assert payload["determinism"]["byte_identical"]
    assert payload["speedups"]["warm_vs_cold"] >= REQUIRED_WARM_SPEEDUP
    assert payload["dispatch"]["batches"] <= payload["dispatch"]["units"]
    assert not payload["failures"], payload["failures"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=DEFAULT_COUNT)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--runs", type=int, default=DEFAULT_RUNS)
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args(argv)
    payload = run_bench(
        count=args.count,
        seed=args.seed,
        jobs=args.jobs,
        runs=args.runs,
        out_path=args.out,
    )
    print(_summarize(payload))
    print(f"wrote {args.out}")
    return 1 if payload["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
