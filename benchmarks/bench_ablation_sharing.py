"""Ablation: strengthen sharing to "same receiver" (§3.3's non-choice).

The paper argues that requiring the two racy invocations to share the
*receiver* — instead of only the owner of the raced field — would mask
races: synchronized methods serialize on the receiver's monitor.  This
benchmark runs C1 both ways and shows the harmful-race count collapse.
"""

from conftest import report_table

from repro.context import derive_plans
from repro.fuzz import RaceFuzzer
from repro.narada import Narada
from repro.subjects import get_subject
from repro.synth import TestSynthesizer


def detect_races(narada, tests, cap=30):
    fuzzer = RaceFuzzer(narada.table, random_runs=4)
    detected = set()
    harmful = 0
    for test in tests[:cap]:
        report = fuzzer.fuzz(test)
        fresh = report.detected.static_keys() - detected
        detected |= report.detected.static_keys()
        harmful += sum(
            1
            for record in report.detected
            if record.static_key() in fresh
            and record.static_key() in report.reproduced
            and not record.is_benign(report.constant_sites)
        )
    return len(detected), harmful


def build_variant(receiver_sharing_only):
    subject = get_subject("C1")
    narada = Narada(subject.load())
    report = narada.synthesize_for_class(subject.class_name)
    plans = derive_plans(
        report.pairs,
        narada.analysis(),
        narada.table,
        receiver_sharing_only=receiver_sharing_only,
    )
    tests = TestSynthesizer(narada.table).synthesize(plans)
    return narada, tests


def test_ablation_receiver_sharing(benchmark):
    narada, default_tests = build_variant(receiver_sharing_only=False)
    _, ablated_tests = build_variant(receiver_sharing_only=True)

    default_detected, default_harmful = benchmark.pedantic(
        lambda: detect_races(narada, default_tests), rounds=1, iterations=1
    )
    ablated_detected, ablated_harmful = detect_races(narada, ablated_tests)

    # Shared receivers serialize the wrapper methods: the directed
    # context (distinct receivers, shared inner queue) finds strictly
    # more harmful races.
    assert default_harmful > ablated_harmful
    assert default_detected > ablated_detected

    report_table(
        "ablation_sharing",
        "\n".join(
            [
                "Ablation: owner sharing (paper) vs forced receiver sharing",
                f"{'variant':<28}{'tests':>7}{'races':>7}{'harmful':>9}",
                "-" * 52,
                f"{'owner sharing (paper)':<28}{len(default_tests):>7}"
                f"{default_detected:>7}{default_harmful:>9}",
                f"{'receiver sharing (ablated)':<28}{len(ablated_tests):>7}"
                f"{ablated_detected:>7}{ablated_harmful:>9}",
            ]
        ),
    )
