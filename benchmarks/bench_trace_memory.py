"""Packed-vs-object trace benchmark + perf gate: writes BENCH_trace.json.

Measures the three claims the columnar trace engine makes:

* **detector throughput** — consuming a *stored* trace through each of
  the engine's two feed protocols: the packed batch loop
  (``feed_packed``) versus the object feed, i.e. iterating the lazy
  object view and delivering each reconstructed event through
  ``on_event``.  Since the tentpole change, traces exist only in packed
  form (the recorder packs rows directly; the memo and the persistent
  cache store packed columns), so materialization is part of what the
  object protocol costs — there is no stored ``Trace`` list to feed
  for free.  A dispatch-only number (events pre-materialized outside
  the timed region) is recorded per detector for transparency; it
  isolates the batch loop's win over per-event ``on_event`` dispatch
  and is not gated.  Gate: >= 2x events/sec on the packed feed for
  every detector, and the race reports must be identical between the
  two paths (always enforced — it is a correctness property, not a
  performance one).
* **resident memory** — peak RSS of a subprocess that records and holds
  a large trace as heap Event objects versus packed columns.  Gate:
  the packed recording peaks strictly lower.
* **memo effectiveness** — fuzzing a real subject must produce a
  nonzero interleaving-digest memo hit rate (the fuzz loop's reason to
  exist; see ``repro/fuzz/racefuzzer.py``).

Usage::

    PYTHONPATH=src python benchmarks/bench_trace_memory.py \
        [--iters N] [--repeat N] [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import resource
import subprocess
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.detect import DjitDetector, EraserDetector, FastTrackDetector  # noqa: E402
from repro.lang import load  # noqa: E402
from repro.runtime import Execution, RandomScheduler, VM  # noqa: E402
from repro.trace.columnar import ColumnarRecorder, PackedTrace  # noqa: E402

OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_trace.json"

#: Payload schema; bump on any shape change so stale reports are caught
#: by ``perf_regression.py --check`` instead of KeyErrors downstream.
SCHEMA_VERSION = 1

REQUIRED_DETECTOR_SPEEDUP = 2.0

#: Two threads hammering shared fields under mixed lock discipline —
#: a dense access/lock stream shaped like the fuzz loop's hot traces.
HAMMER_SOURCE = """
class Hammer {
  int a;
  int b;
  int c;
  void work(int n) {
    int i = 0;
    while (i < n) {
      this.a = this.a + 1;
      int t = this.b;
      this.b = t + i;
      i = i + 1;
    }
  }
  synchronized void safeWork(int n) {
    int i = 0;
    while (i < n) {
      this.c = this.c + 1;
      i = i + 1;
    }
  }
}
test Seed { Hammer h = new Hammer(); }
"""


def record_hammer(iters: int) -> PackedTrace:
    """Record a two-thread hammer run into packed columns."""
    table = load(HAMMER_SOURCE)
    vm = VM(table, seed=0)
    _, env = vm.run_test("Seed")
    receiver = env["h"]
    recorder = ColumnarRecorder("hammer")
    execution = Execution(vm, listeners=(recorder,))
    for _ in range(2):
        def body(ctx):
            yield from vm.interp.call_method(ctx, receiver, "work", [iters])
            yield from vm.interp.call_method(
                ctx, receiver, "safeWork", [iters]
            )

        execution.spawn(body)
    result = execution.run(
        RandomScheduler(seed=11), max_steps=400 * iters + 10_000
    )
    assert result.completed, "hammer run did not finish; raise max_steps"
    return recorder.packed


def _race_payload(race_set):
    return (
        [
            (r.detector, r.class_name, r.field_name, r.address, r.first, r.second)
            for r in race_set
        ],
        race_set.dynamic_count,
    )


def bench_detectors(packed: PackedTrace, repeat: int) -> tuple[dict, list]:
    """Best-of-``repeat`` events/sec per detector, both feed protocols.

    The gated comparison is stored-trace consumption: ``feed_packed``
    over the columns versus the object feed ``for event in packed:
    on_event(event)`` (lazy materialization + dispatch).  The
    dispatch-only row (events pre-built once, outside the timed
    region) is informational.
    """
    events = packed.to_trace().events
    n = len(events)
    rows: dict[str, dict] = {}
    failures: list[str] = []
    for detector_cls in (FastTrackDetector, EraserDetector, DjitDetector):
        object_best = dispatch_best = packed_best = float("inf")
        object_races = packed_races = None
        for _ in range(repeat):
            detector = detector_cls()
            on_event = detector.on_event
            start = time.perf_counter()
            for event in packed:
                on_event(event)
            object_best = min(object_best, time.perf_counter() - start)
            object_races = detector.races

            detector = detector_cls()
            on_event = detector.on_event
            start = time.perf_counter()
            for event in events:
                on_event(event)
            dispatch_best = min(dispatch_best, time.perf_counter() - start)

            detector = detector_cls()
            start = time.perf_counter()
            detector.feed_packed(packed)
            packed_best = min(packed_best, time.perf_counter() - start)
            packed_races = detector.races
        name = detector_cls().name
        if _race_payload(object_races) != _race_payload(packed_races):
            failures.append(f"{name}: packed and object race reports differ")
        speedup = object_best / packed_best
        rows[name] = {
            "events": n,
            "object_events_per_s": round(n / object_best),
            "dispatch_only_events_per_s": round(n / dispatch_best),
            "packed_events_per_s": round(n / packed_best),
            "speedup": round(speedup, 2),
            "speedup_vs_dispatch_only": round(dispatch_best / packed_best, 2),
            "races": len(packed_races),
        }
        if speedup < REQUIRED_DETECTOR_SPEEDUP:
            failures.append(
                f"{name}: packed speedup {speedup:.2f}x < required "
                f"{REQUIRED_DETECTOR_SPEEDUP}x"
            )
    return rows, failures


# ----------------------------------------------------------------------
# Peak-RSS comparison.  Each mode runs in a fresh subprocess so
# ru_maxrss reflects only that representation's recording.

_CHILD_TEMPLATE = r"""
import resource, sys
sys.path.insert(0, {src!r})
import bench_trace_memory as bench
from repro.lang import load
from repro.runtime import VM, Execution, RandomScheduler
from repro.trace import Recorder
from repro.trace.columnar import ColumnarRecorder

table = load(bench.HAMMER_SOURCE)
vm = VM(table, seed=0)
_, env = vm.run_test("Seed")
receiver = env["h"]
mode = {mode!r}
iters = {iters}
recorder = Recorder("hammer") if mode == "object" else ColumnarRecorder("hammer")
execution = Execution(vm, listeners=(recorder,))
for _ in range(2):
    def body(ctx):
        yield from vm.interp.call_method(ctx, receiver, "work", [iters])
        yield from vm.interp.call_method(ctx, receiver, "safeWork", [iters])
    execution.spawn(body)
result = execution.run(RandomScheduler(seed=11), max_steps=400 * iters + 10000)
assert result.completed
held = recorder.trace if mode == "object" else recorder.packed
print(len(held), resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""


def _child_rss(mode: str, iters: int) -> tuple[int, int]:
    here = pathlib.Path(__file__).parent
    code = _CHILD_TEMPLATE.format(src=str(here), mode=mode, iters=iters)
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": str(here.parent / "src"), "PATH": "/usr/bin:/bin"},
    ).stdout.split()
    return int(out[0]), int(out[1])


def bench_rss(iters: int) -> tuple[dict, list]:
    # The trace must dominate the interpreter's ~25 MiB baseline for
    # the representations to separate cleanly (hugepage-granularity
    # noise otherwise swamps a couple-MiB delta), so the RSS children
    # run a larger hammer than the throughput stage.
    iters = max(4 * iters, 12_000)
    object_events, object_rss = _child_rss("object", iters)
    packed_events, packed_rss = _child_rss("packed", iters)
    failures = []
    if object_events != packed_events:
        failures.append(
            f"rss children recorded different traces: "
            f"{object_events} vs {packed_events} events"
        )
    if packed_rss >= object_rss:
        failures.append(
            f"rss: packed recording peaked at {packed_rss} KiB, not below "
            f"the object recording's {object_rss} KiB"
        )
    row = {
        "events": object_events,
        "object_peak_rss_kib": object_rss,
        "packed_peak_rss_kib": packed_rss,
        "reduction": round(1 - packed_rss / object_rss, 3),
    }
    return row, failures


def bench_memo(random_runs: int) -> tuple[dict, list]:
    from repro.fuzz import RaceFuzzer
    from repro.narada import Narada
    from repro.subjects import get_subject

    subject = get_subject("C1")
    narada = Narada(subject.load())
    synthesis = narada.synthesize_for_class(subject.class_name)
    fuzzer = RaceFuzzer(narada.table, random_runs=random_runs)
    hits = misses = events = nbytes = 0
    for test in synthesis.tests:
        report = fuzzer.fuzz(test)
        hits += report.memo_hits
        misses += report.memo_misses
        events += report.trace_events
        nbytes += report.packed_bytes
    runs = hits + misses
    row = {
        "subject": "C1",
        "tests": len(synthesis.tests),
        "runs": runs,
        "memo_hits": hits,
        "memo_misses": misses,
        "hit_rate": round(hits / runs, 3) if runs else 0.0,
        "trace_events": events,
        "packed_bytes": nbytes,
    }
    failures = []
    if hits == 0:
        failures.append("memo: zero interleaving-digest hits fuzzing C1")
    return row, failures


def run_bench(
    iters: int = 3000,
    repeat: int = 3,
    random_runs: int = 6,
    out_path: pathlib.Path = OUT_PATH,
) -> dict:
    packed = record_hammer(iters)
    detector_rows, failures = bench_detectors(packed, repeat)
    rss_row, rss_failures = bench_rss(iters)
    memo_row, memo_failures = bench_memo(random_runs)
    failures += rss_failures + memo_failures
    payload = {
        "schema_version": SCHEMA_VERSION,
        "scenario": {
            "hammer_iters": iters,
            "repeat": repeat,
            "trace_events": len(packed),
            "packed_bytes": packed.nbytes(),
            "fuzz_random_runs": random_runs,
        },
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "detectors": detector_rows,
        "required": {"detector_speedup": REQUIRED_DETECTOR_SPEEDUP},
        "rss": rss_row,
        "memo": memo_row,
        "failures": failures,
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _summarize(payload: dict) -> str:
    lines = [
        "trace engine ({} events, {} packed bytes)".format(
            payload["scenario"]["trace_events"],
            payload["scenario"]["packed_bytes"],
        )
    ]
    for name, row in payload["detectors"].items():
        lines.append(
            "  {:10s} {:>12,} ev/s packed  vs {:>12,} ev/s object "
            "({}x; {}x vs dispatch-only)".format(
                name,
                row["packed_events_per_s"],
                row["object_events_per_s"],
                row["speedup"],
                row["speedup_vs_dispatch_only"],
            )
        )
    rss = payload["rss"]
    lines.append(
        "  peak RSS     {} KiB packed vs {} KiB object "
        "({:.0%} reduction)".format(
            rss["packed_peak_rss_kib"],
            rss["object_peak_rss_kib"],
            rss["reduction"],
        )
    )
    memo = payload["memo"]
    lines.append(
        "  fuzz memo    {}/{} runs hit ({:.0%})".format(
            memo["memo_hits"], memo["runs"], memo["hit_rate"]
        )
    )
    for failure in payload["failures"]:
        lines.append(f"  GATE FAILED: {failure}")
    return "\n".join(lines)


def test_trace_memory_smoke(tmp_path):
    """Quick variant: identity + memo gates must hold; speedups recorded."""
    payload = run_bench(
        iters=800,
        repeat=2,
        random_runs=4,
        out_path=tmp_path / "BENCH_trace_smoke.json",
    )
    try:
        from conftest import report_table

        report_table("trace_memory_smoke", _summarize(payload))
    except ImportError:  # standalone collection
        pass
    identity_failures = [
        f for f in payload["failures"] if "race reports differ" in f
    ]
    assert not identity_failures, identity_failures
    assert payload["memo"]["memo_hits"] > 0
    assert not payload["failures"], payload["failures"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--iters", type=int, default=3000)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--runs", type=int, default=6)
    parser.add_argument(
        "--quick", action="store_true", help="smaller workload (CI smoke)"
    )
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args(argv)
    iters = 800 if args.quick else args.iters
    repeat = 2 if args.quick else args.repeat
    runs = 4 if args.quick else args.runs
    payload = run_bench(
        iters=iters, repeat=repeat, random_runs=runs, out_path=args.out
    )
    print(_summarize(payload))
    print(f"wrote {args.out}")
    return 1 if payload["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
