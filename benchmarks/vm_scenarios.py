"""Shared VM throughput scenarios for benchmarks and the perf harness.

One place defines the hot-loop workload, the listener configurations,
and the measurement loop, so ``bench_vm_throughput.py`` (pytest-benchmark
timings) and ``perf_regression.py`` (BENCH_vm.json regression gate)
measure exactly the same thing.
"""

from __future__ import annotations

from repro.detect import DjitDetector, EraserDetector, FastTrackDetector
from repro.lang import load
from repro.runtime import Execution, RoundRobinScheduler, VM
from repro.trace import Recorder

HOT_LOOP = """
class Worker {
  int acc;
  void spin(int n) {
    int i = 0;
    while (i < n) {
      this.acc = this.acc + i;
      i = i + 1;
    }
  }
  synchronized void spinLocked(int n) {
    int i = 0;
    while (i < n) {
      this.acc = this.acc + i;
      i = i + 1;
    }
  }
}
test Seed { Worker w = new Worker(); }
"""

LOOP_N = 300

_table = load(HOT_LOOP)


def run_scenario(listeners=(), threads=2, method="spin"):
    """Run the hot loop on ``threads`` threads; returns the ExecResult."""
    vm = VM(_table)
    _, env = vm.run_test("Seed")
    worker = env["w"]
    execution = Execution(vm, listeners=listeners)
    for _ in range(threads):
        execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, worker, method, [LOOP_N])
        )
    return execution.run(RoundRobinScheduler())


#: name -> (listener factory, method). Factories build fresh listeners
#: per run so detector state never carries over between rounds.
SCENARIOS = {
    "bare": (lambda: (), "spin"),
    "recorder": (lambda: (Recorder(),), "spin"),
    "fasttrack": (lambda: (FastTrackDetector(),), "spin"),
    "djit": (lambda: (DjitDetector(),), "spin"),
    "eraser": (lambda: (EraserDetector(),), "spin"),
    "all_detectors": (
        lambda: (FastTrackDetector(), EraserDetector(), DjitDetector()),
        "spin",
    ),
    "fasttrack_locked": (lambda: (FastTrackDetector(),), "spinLocked"),
}


def measure(name: str, rounds: int = 5) -> dict:
    """Best-of-``rounds`` events/sec for one named scenario."""
    import time

    factory, method = SCENARIOS[name]
    best = 0.0
    steps = 0
    for _ in range(rounds):
        listeners = factory()
        start = time.perf_counter()
        result = run_scenario(listeners=listeners, method=method)
        elapsed = time.perf_counter() - start
        assert result.completed
        steps = result.steps
        best = max(best, result.steps / elapsed)
    return {"events_per_sec": round(best, 1), "steps": steps, "rounds": rounds}
