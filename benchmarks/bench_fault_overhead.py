"""Fault-tolerance overhead benchmark + gate: writes BENCH_fault.json.

Runs the full pipeline (synthesis + detection) over paper subjects
three ways and compares wall-clock and output digests:

* **baseline** — fault layer at rest: no watchdog deadline, no
  injection (the default configuration every other benchmark runs);
* **armed** — per-unit watchdog deadline + retry policy configured, but
  nothing injected: this is the clean-path cost of the fault machinery
  (deadline polling in the pool dispatch loop, SIGALRM arming inline);
* **injected** — deterministic ``crash:0.2`` fault injection with
  generous retries: every unit eventually converges, proving retried
  runs are bit-identical to clean ones (C1..C9 by default — the
  full-breadth identity check).

Gates:

* the serialized reports must be **byte-identical** across all three
  runs — always enforced;
* the injected run must fully converge (no permanent failures) and must
  actually have exercised the retry path — always enforced;
* the armed run must cost < 5% over baseline — enforced only when the
  baseline is long enough (>= 10s) for the ratio to be signal rather
  than scheduler noise; the measured overhead is always recorded.

Usage::

    PYTHONPATH=src python benchmarks/bench_fault_overhead.py \
        [--quick] [--subjects C1,C2,...] [--jobs N] [--runs N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.narada import (  # noqa: E402
    PipelineConfig,
    PipelineOrchestrator,
    subject_specs,
)
from repro.subjects import get_subject  # noqa: E402

OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_fault.json"

#: Payload schema; bump on any shape change so stale reports are caught
#: by ``perf_regression.py --check`` instead of KeyErrors downstream.
SCHEMA_VERSION = 1

#: Random schedules per synthesized test (modest: relative times matter).
DEFAULT_RUNS = 2

#: Subjects the --quick mode (CI smoke) covers.
QUICK_SUBJECTS = ["C1", "C8"]

#: Clean-path overhead budget for the armed fault layer.
REQUIRED_MAX_OVERHEAD_PCT = 5.0

#: Baseline must run at least this long before the overhead ratio is
#: trustworthy enough to enforce.
OVERHEAD_GATE_MIN_SECONDS = 10.0

#: The injected scenario: crashes only (hangs would add a wall-clock
#: penalty of one watchdog deadline per injection — correctness of that
#: path is covered by the test suite, not timed here).
FAULT_SPEC = "crash:0.2"
INJECTED_MAX_RETRIES = 10

#: Watchdog deadline for the armed + injected runs.  Generous: it must
#: never fire on a legitimately slow unit.
UNIT_TIMEOUT_S = 120.0


def _run(specs, jobs, config):
    start = time.perf_counter()
    with PipelineOrchestrator(jobs=jobs, cache=None, config=config) as orch:
        outcomes = orch.run(specs, detect=True)
        ledger = orch.fault_ledger
    elapsed = time.perf_counter() - start
    return elapsed, {o.spec.name: o.digest() for o in outcomes}, ledger


def run_bench(
    subject_keys: list[str] | None = None,
    jobs: int = 4,
    runs: int = DEFAULT_RUNS,
    out_path: pathlib.Path = OUT_PATH,
) -> dict:
    """Measure baseline vs armed vs injected; write and return payload."""
    if subject_keys is None:
        specs = subject_specs()
    else:
        specs = subject_specs([get_subject(k) for k in subject_keys])

    baseline_cfg = PipelineConfig(random_runs=runs)
    armed_cfg = PipelineConfig(random_runs=runs, unit_timeout=UNIT_TIMEOUT_S)
    injected_cfg = PipelineConfig(
        random_runs=runs,
        unit_timeout=UNIT_TIMEOUT_S,
        max_retries=INJECTED_MAX_RETRIES,
        retry_backoff=0.0,
        fault_inject=FAULT_SPEC,
    )

    baseline_s, baseline_digests, _ = _run(specs, jobs, baseline_cfg)
    armed_s, armed_digests, armed_ledger = _run(specs, jobs, armed_cfg)
    injected_s, injected_digests, injected_ledger = _run(
        specs, jobs, injected_cfg
    )

    identical = baseline_digests == armed_digests == injected_digests
    overhead_pct = (armed_s / baseline_s - 1.0) * 100.0
    overhead_gate = baseline_s >= OVERHEAD_GATE_MIN_SECONDS

    failures = []
    if not identical:
        failures.append(
            "determinism: digests differ across baseline/armed/injected runs"
        )
    if not injected_ledger.ok():
        failures.append(
            f"injected run did not converge: "
            f"{len(injected_ledger.failures)} permanent failure(s)"
        )
    if injected_ledger.retries == 0:
        failures.append(
            "injected run never retried — the fault path was not exercised"
        )
    if armed_ledger.timeouts or armed_ledger.retries:
        failures.append(
            "armed clean run tripped the watchdog/retry path — the "
            "deadline is too tight for this machine"
        )
    if overhead_gate and overhead_pct > REQUIRED_MAX_OVERHEAD_PCT:
        failures.append(
            f"clean-path overhead {overhead_pct:.1f}% > allowed "
            f"{REQUIRED_MAX_OVERHEAD_PCT}%"
        )

    payload = {
        "schema_version": SCHEMA_VERSION,
        "scenario": {
            "subjects": [spec.name for spec in specs],
            "random_runs": runs,
            "jobs": jobs,
            "fault_spec": FAULT_SPEC,
            "unit_timeout_s": UNIT_TIMEOUT_S,
            "injected_max_retries": INJECTED_MAX_RETRIES,
        },
        "machine": {
            "cpu_count": os.cpu_count() or 1,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "times_s": {
            "baseline": round(baseline_s, 3),
            "armed": round(armed_s, 3),
            "injected": round(injected_s, 3),
        },
        "overhead": {
            "armed_vs_baseline_pct": round(overhead_pct, 2),
            "required_max_pct": REQUIRED_MAX_OVERHEAD_PCT,
            "gate_enforced": overhead_gate,
        },
        "injected_ledger": injected_ledger.to_dict(),
        "determinism": {
            "byte_identical": identical,
            "digests": baseline_digests,
        },
        "failures": failures,
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _summarize(payload: dict) -> str:
    times = payload["times_s"]
    overhead = payload["overhead"]
    counters = payload["injected_ledger"]["counters"]
    lines = [
        "fault-layer overhead ({} subject(s), runs={}, jobs={})".format(
            len(payload["scenario"]["subjects"]),
            payload["scenario"]["random_runs"],
            payload["scenario"]["jobs"],
        ),
        f"  baseline  {times['baseline']:8.2f}s",
        "  armed     {:8.2f}s  ({:+.1f}% vs baseline, gate {})".format(
            times["armed"],
            overhead["armed_vs_baseline_pct"],
            "on" if overhead["gate_enforced"] else "off",
        ),
        "  injected  {:8.2f}s  ({} retries, {} respawns, {} failures)".format(
            times["injected"],
            counters["retries"],
            counters["pool_respawns"],
            len(payload["injected_ledger"]["failures"]),
        ),
        "  byte-identical reports: {}".format(
            payload["determinism"]["byte_identical"]
        ),
    ]
    for failure in payload["failures"]:
        lines.append(f"  GATE FAILED: {failure}")
    return "\n".join(lines)


def test_fault_overhead_smoke(tmp_path):
    """Two-subject smoke: identity + convergence gates must hold."""
    payload = run_bench(
        subject_keys=QUICK_SUBJECTS,
        jobs=2,
        runs=2,
        out_path=tmp_path / "BENCH_fault_smoke.json",
    )
    try:
        from conftest import report_table

        report_table("fault_overhead_smoke", _summarize(payload))
    except ImportError:  # standalone collection
        pass
    assert payload["determinism"]["byte_identical"]
    assert payload["injected_ledger"]["counters"]["retries"] > 0
    assert not payload["injected_ledger"]["failures"]
    assert not payload["failures"], payload["failures"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--subjects",
        help="comma-separated subject keys (default: all nine)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke mode: subjects {','.join(QUICK_SUBJECTS)}",
    )
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--runs", type=int, default=DEFAULT_RUNS)
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args(argv)
    if args.quick:
        keys = QUICK_SUBJECTS
    elif args.subjects:
        keys = args.subjects.split(",")
    else:
        keys = None
    payload = run_bench(
        subject_keys=keys, jobs=args.jobs, runs=args.runs, out_path=args.out
    )
    print(_summarize(payload))
    print(f"wrote {args.out}")
    return 1 if payload["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
