"""Ablation: detector back-ends on identical executions.

Runs the same synthesized C1 tests under each detector separately and
compares coverage and cost:

* Djit+ and FastTrack agree on which fields race (FastTrack may report
  fewer pairs — the epoch optimization's at-least-one-race guarantee),
* Eraser's lockset view is schedule-insensitive, so it flags at least
  the fields the HB detectors flag on these tests,
* per-event cost ordering is benchmarked (FastTrack's epochs vs Djit+'s
  full vector clocks).
"""

import pytest
from conftest import report_table

from _pipeline_cache import synthesis_for
from repro.detect import DjitDetector, EraserDetector, FastTrackDetector
from repro.runtime import RandomScheduler
from repro.synth import TestRunner

DETECTORS = {
    "eraser": EraserDetector,
    "djit+": DjitDetector,
    "fasttrack": FastTrackDetector,
}


def run_with(detector_cls, narada, tests, runs=3):
    # One fresh detector per run: heap refs restart in every VM, so
    # reusing detector state across runs would alias unrelated objects.
    keys = set()
    fields = set()
    for test in tests:
        for seed in range(runs):
            detector = detector_cls()
            runner = TestRunner(narada.table, listeners=(detector,))
            runner.run(test, RandomScheduler(seed * 101 + 7, switch_bias=0.4))
            keys |= detector.races.static_keys()
            fields |= {k[:2] for k in detector.races.static_keys()}
    return keys, fields


@pytest.mark.parametrize("name", sorted(DETECTORS))
def test_detector_cost(benchmark, name):
    subject, narada, report = synthesis_for("C1")
    tests = report.tests[:6]
    keys, _ = benchmark.pedantic(
        lambda: run_with(DETECTORS[name], narada, tests),
        rounds=1,
        iterations=1,
    )
    assert isinstance(keys, set)


def test_detector_coverage(benchmark):
    subject, narada, report = synthesis_for("C1")
    # Use tests whose racy methods hit the inner state repeatedly:
    # Eraser's lockset only starts refining at the second thread's
    # access (the exclusive-state initialization suppression of Savage
    # et al.), so it structurally misses races where each thread touches
    # the variable exactly once.
    mutators = {"addFirst", "addLast", "offer", "clear", "removeAll"}
    tests = [
        t
        for t in report.tests
        if {
            t.plan.left.side.method_id()[1],
            t.plan.right.side.method_id()[1],
        }
        <= mutators
    ][:10]
    assert tests

    results = benchmark.pedantic(
        lambda: {
            name: run_with(cls, narada, tests)
            for name, cls in DETECTORS.items()
        },
        rounds=1,
        iterations=1,
    )
    ft_keys, ft_fields = results["fasttrack"]
    dj_keys, dj_fields = results["djit+"]
    er_keys, er_fields = results["eraser"]

    # FastTrack ⊆ Djit+ at pair granularity, equal at field granularity.
    assert ft_keys <= dj_keys
    assert ft_fields == dj_fields
    # With repeated accesses the lockset detector sees the central racy
    # field too (it may still miss single-access-per-thread fields).
    assert ("CoalescedWriteBehindQueue", "count") in er_fields

    report_table(
        "ablation_detectors",
        "\n".join(
            [
                "Ablation: detector back-ends on identical C1 executions",
                f"{'detector':<12}{'race pairs':>12}{'racy fields':>13}",
                "-" * 38,
                *[
                    f"{name:<12}{len(results[name][0]):>12}"
                    f"{len(results[name][1]):>13}"
                    for name in ("eraser", "djit+", "fasttrack")
                ],
            ]
        ),
    )
