"""Compressed-trace benchmark + perf gate: writes BENCH_compressed.json.

Measures the three claims the compressed-trace layer makes
(``repro/trace/compressed.py``, ``repro/trace/spill.py``,
DESIGN.md §13):

* **identity** — sweeping a :class:`CompressedTrace` must produce
  bit-identical per-pass report fragments and the same whole-stream
  digest as sweeping the underlying :class:`PackedTrace`, on every
  paper subject (C1..C9) and a generated-corpus slice, with both the
  full registered pass stack (``lockorder`` forces the row-at-a-time
  fallback) and the summarizable stack (block summaries actually
  skip rows).  Always enforced — correctness, not performance.
* **throughput** — on a 10x-length ``Worker.spin`` trace the
  compressed path (compression scan *included*) must reach >= 3x
  compression and >= 2x events/sec over the packed sweep, and clear an
  events/sec-per-compressed-byte floor (the ratio CI gates so a
  "faster" sweep can't buy its speed with a bloated plan).
* **bounded-RSS spill** — recording through
  :class:`SpillingRecorder` must keep recording-phase peak RSS flat
  (<= ``REQUIRED_RSS_FLATNESS``x) while the trace grows 10x, and stay
  below the in-memory recorder's peak on the big trace, with digest
  identity between the spilled and in-memory recordings.  Measured on
  the recording phase: once mapped, column pages are file-backed and
  reclaimable, which ``ru_maxrss`` cannot show without memory
  pressure.

Usage::

    PYTHONPATH=src python benchmarks/bench_compressed_traces.py \
        [--quick] [--corpus-count N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import subprocess
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.analysis.sweep import (  # noqa: E402
    SweepStats,
    create_pass,
    interest_union,
    resolve_pass,
    run_sweep,
)
from repro.fuzz.racefuzzer import schedule_seed  # noqa: E402
from repro.lang import load  # noqa: E402
from repro.narada import Narada  # noqa: E402
from repro.runtime import Execution, RoundRobinScheduler, VM  # noqa: E402
from repro.runtime.scheduler import RandomScheduler  # noqa: E402
from repro.subjects import get_subject  # noqa: E402
from repro.synth.runner import TestRunner  # noqa: E402
from repro.trace.columnar import ColumnarRecorder  # noqa: E402
from repro.trace.compressed import compress_trace  # noqa: E402

OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_compressed.json"

#: Payload schema; bump on any shape change so stale reports are caught
#: by ``perf_regression.py --check`` instead of KeyErrors downstream.
SCHEMA_VERSION = 1

#: Every registered pass; ``lockorder`` has no SummarySpec, so this
#: stack exercises the row-at-a-time fallback on repeat blocks.
ALL_PASSES = (
    "fasttrack", "eraser", "djit+", "adjacency", "coverage", "goodlock",
    "lockorder",
)

#: The block-summarizable stack: repeat blocks converge and skip.
SUMMARIZABLE_PASSES = (
    "fasttrack", "eraser", "djit+", "adjacency", "coverage", "goodlock",
)

#: Throughput-leg gates on the 10x spin trace.
REQUIRED_RATIO = 3.0
REQUIRED_SPEEDUP = 2.0
#: Compressed events/sec divided by compressed-plan bytes.  The packed
#: sweep scores well under 1 here (every byte is decoded); a compressed
#: sweep that actually skips repeat blocks clears 50 with two orders
#: of magnitude to spare, so the floor is noise-robust on shared CI.
REQUIRED_EV_PER_COMPRESSED_BYTE = 50.0

#: Spill-leg gate: recording-phase peak RSS on the 10x trace over the
#: 1x trace.  Spill keeps only the flush buffer + side tables on the
#: heap, so the true ratio is ~1; 1.5 absorbs allocator noise.
REQUIRED_RSS_FLATNESS = 1.5

SPIN_SOURCE = """
class Worker {
  int acc;
  void spin(int n) {
    int i = 0;
    while (i < n) {
      this.acc = this.acc + i;
      i = i + 1;
    }
  }
}
test Seed { Worker w = new Worker(); }
"""

#: The canonical hot-loop length (vm_scenarios.LOOP_N); the throughput
#: leg runs 10x this, per the acceptance criterion.
BASE_LOOP_N = 300


def _record_spin(n: int):
    """Two threads of ``Worker.spin(n)`` under round-robin, packed."""
    table = load(SPIN_SOURCE)
    vm = VM(table)
    _, env = vm.run_test("Seed")
    worker = env["w"]
    recorder = ColumnarRecorder("spin")
    execution = Execution(vm, listeners=(recorder,))
    for _ in range(2):
        execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, worker, "spin", [n])
        )
    result = execution.run(RoundRobinScheduler(), max_steps=100 * n + 10_000)
    assert result.completed, "spin run did not finish; raise max_steps"
    return recorder.packed


def _fragment(sweep_pass):
    """Canonical report fragment of one pass, for identity comparison."""
    name = sweep_pass.name
    if name in ("fasttrack", "eraser", "djit+"):
        races = sweep_pass.races
        return (
            [
                (
                    r.detector, r.class_name, r.field_name, r.address,
                    r.first, r.second,
                )
                for r in races
            ],
            races.dynamic_count,
        )
    if name == "adjacency":
        return tuple(sorted(sweep_pass.confirmed))
    if name == "coverage":
        return tuple(sorted(sweep_pass.units))
    if name == "goodlock":
        return (tuple(sweep_pass.edges), tuple(sweep_pass.potential))
    if name == "lockorder":
        return tuple(sweep_pass.finish())
    raise AssertionError(f"no fragment extractor for pass {name!r}")


def _sweep(names, trace, stats=None):
    passes = tuple(create_pass(name) for name in names)
    run_sweep(passes, trace, stats=stats)
    return {p.name: _fragment(p) for p in passes}


# ----------------------------------------------------------------------
# Identity leg: C1..C9 + corpus slice, every stack, packed vs compressed.


def _subject_tables(corpus_count: int):
    """(label, ClassTable, class_name) for the identity population."""
    out = []
    for index in range(1, 10):
        subject = get_subject(f"C{index}")
        out.append((subject.key, subject.load(), subject.class_name))
    if corpus_count:
        from repro.corpus import CorpusConfig, generate_corpus

        for generated in generate_corpus(CorpusConfig(count=corpus_count)):
            out.append(
                (generated.key, load(generated.source), generated.class_name)
            )
    return out


def _subject_traces(table, class_name, runs: int, max_tests: int):
    """Seed traces plus concurrent traces of synthesized tests.

    Seed tests give the sequential shapes the analysis stage sweeps;
    the synthesized tests, run under content-seeded random schedules,
    give the racy concurrent shapes the fuzz loop sweeps — the traces
    whose race payloads the identity gate is really about.
    """
    interests = interest_union([resolve_pass(n) for n in ALL_PASSES])
    traces = []
    for test in table.program.tests:
        vm = VM(table, seed=0)
        recorder = ColumnarRecorder(test.name, interests=interests)
        vm.run_test(test.name, listeners=(recorder,))
        traces.append(recorder.packed)
    narada = Narada(table)
    synthesis = narada.synthesize_for_class(class_name)
    for test in synthesis.tests[:max_tests]:
        for run_index in range(runs):
            recorder = ColumnarRecorder(test.name, interests=interests)
            runner = TestRunner(table, vm_seed=0, listeners=(recorder,))
            runner.run(
                test,
                RandomScheduler(seed=schedule_seed(test.name, run_index)),
            )
            traces.append(recorder.packed)
    return traces


def bench_identity(
    corpus_count: int, runs: int, max_tests: int
) -> tuple[dict, list]:
    failures: list[str] = []
    subjects = traces = 0
    total_rows = plan_rows = blocks = 0
    stats = SweepStats()
    for label, table, class_name in _subject_tables(corpus_count):
        subjects += 1
        for packed in _subject_traces(table, class_name, runs, max_tests):
            traces += 1
            compressed = compress_trace(packed)
            cstats = compressed.stats()
            total_rows += cstats.total_rows
            plan_rows += cstats.compressed_rows
            blocks += cstats.repeat_blocks
            if compressed.digest() != packed.digest():
                failures.append(f"{label}: compressed digest differs")
            for stack in (ALL_PASSES, SUMMARIZABLE_PASSES):
                base = _sweep(stack, packed)
                over = _sweep(stack, compressed, stats=stats)
                if base != over:
                    diff = [n for n in stack if base[n] != over[n]]
                    failures.append(
                        f"{label} ({packed.test_name}, "
                        f"{'+'.join(stack)}): compressed sweep differs "
                        f"on {diff}"
                    )
    row = {
        "subjects": subjects,
        "traces": traces,
        "rows": total_rows,
        "plan_rows": plan_rows,
        "repeat_blocks": blocks,
        "ratio": round(total_rows / plan_rows, 2) if plan_rows else 1.0,
        "rows_skipped": stats.rows_skipped,
        "blocks_summarized": stats.blocks_summarized,
        "blocks_replayed": stats.blocks_replayed,
    }
    return row, failures


# ----------------------------------------------------------------------
# Throughput leg: 10x spin trace, packed sweep vs compress + sweep.


def bench_throughput(loop_n: int, repeat: int) -> tuple[dict, list]:
    packed = _record_spin(loop_n)
    n = len(packed)
    packed_best = compressed_best = compress_best = float("inf")
    packed_frags = compressed_frags = None
    stats = None
    for _ in range(repeat):
        start = time.perf_counter()
        packed_frags = _sweep(SUMMARIZABLE_PASSES, packed)
        packed_best = min(packed_best, time.perf_counter() - start)

        stats = SweepStats()
        start = time.perf_counter()
        compressed = compress_trace(packed)
        compress_seconds = time.perf_counter() - start
        compressed_frags = _sweep(SUMMARIZABLE_PASSES, compressed, stats=stats)
        compressed_best = min(
            compressed_best, time.perf_counter() - start
        )
        compress_best = min(compress_best, compress_seconds)
    cstats = compress_trace(packed).stats()
    # Compressed-plan bytes: the column bytes a converged sweep decodes.
    plan_bytes = max(
        1, round(packed.column_nbytes() * cstats.compressed_rows / n)
    )
    speedup = packed_best / compressed_best
    ev_per_s = n / compressed_best
    ev_per_byte = ev_per_s / plan_bytes
    failures = []
    if packed_frags != compressed_frags:
        failures.append("throughput: compressed sweep results differ")
    if cstats.ratio < REQUIRED_RATIO:
        failures.append(
            f"throughput: compression {cstats.ratio:.1f}x < required "
            f"{REQUIRED_RATIO}x"
        )
    if speedup < REQUIRED_SPEEDUP:
        failures.append(
            f"throughput: compressed sweep {speedup:.2f}x < required "
            f"{REQUIRED_SPEEDUP}x"
        )
    if ev_per_byte < REQUIRED_EV_PER_COMPRESSED_BYTE:
        failures.append(
            f"throughput: {ev_per_byte:.1f} events/s per compressed byte "
            f"< required {REQUIRED_EV_PER_COMPRESSED_BYTE}"
        )
    row = {
        "loop_n": loop_n,
        "events": n,
        "ratio": round(cstats.ratio, 1),
        "plan_rows": cstats.compressed_rows,
        "plan_bytes": plan_bytes,
        "packed_events_per_s": round(n / packed_best),
        "compressed_events_per_s": round(ev_per_s),
        "compress_seconds": round(compress_best, 4),
        "speedup": round(speedup, 2),
        "events_per_s_per_compressed_byte": round(ev_per_byte, 1),
        "rows_skipped": stats.rows_skipped,
        "blocks_summarized": stats.blocks_summarized,
    }
    return row, failures


# ----------------------------------------------------------------------
# Spill leg: recording-phase peak RSS, 1x vs 10x, spill vs in-memory.
# Each mode runs in a fresh subprocess so ru_maxrss reflects only that
# recording.

_CHILD_TEMPLATE = r"""
import resource, sys
sys.path.insert(0, {here!r})
import bench_compressed_traces as bench
from repro.analysis.sweep import run_sweep, create_pass
from repro.lang import load
from repro.runtime import VM, Execution, RoundRobinScheduler
from repro.trace.columnar import ColumnarRecorder
from repro.trace.compressed import compress_trace
from repro.trace.spill import SpillingRecorder

mode = {mode!r}
n = {n}
table = load(bench.SPIN_SOURCE)
vm = VM(table)
_, env = vm.run_test("Seed")
worker = env["w"]
recorder = (
    SpillingRecorder("spin") if mode == "spill" else ColumnarRecorder("spin")
)
execution = Execution(vm, listeners=(recorder,))
for _ in range(2):
    execution.spawn(
        lambda ctx: vm.interp.call_method(ctx, worker, "spin", [n])
    )
result = execution.run(RoundRobinScheduler(), max_steps=100 * n + 10000)
assert result.completed
rss_record = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
packed = recorder.packed
digest = packed.digest()
run_sweep(
    [create_pass(p) for p in bench.SUMMARIZABLE_PASSES],
    compress_trace(packed),
)
rss_total = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(len(packed), digest, rss_record, rss_total)
"""


def _child(mode: str, n: int) -> dict:
    here = pathlib.Path(__file__).parent
    code = _CHILD_TEMPLATE.format(here=str(here), mode=mode, n=n)
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": str(here.parent / "src"), "PATH": "/usr/bin:/bin"},
    ).stdout.split()
    return {
        "events": int(out[0]),
        "digest": out[1],
        "recording_peak_rss_kib": int(out[2]),
        "total_peak_rss_kib": int(out[3]),
    }


def bench_spill(base_n: int) -> tuple[dict, list]:
    big_n = base_n * 10
    spill_base = _child("spill", base_n)
    spill_big = _child("spill", big_n)
    mem_big = _child("mem", big_n)
    failures = []
    if spill_big["digest"] != mem_big["digest"]:
        failures.append("spill: spilled digest differs from in-memory")
    flatness = (
        spill_big["recording_peak_rss_kib"]
        / spill_base["recording_peak_rss_kib"]
    )
    if flatness > REQUIRED_RSS_FLATNESS:
        failures.append(
            f"spill: 10x trace grew recording RSS {flatness:.2f}x > "
            f"allowed {REQUIRED_RSS_FLATNESS}x"
        )
    if (
        spill_big["recording_peak_rss_kib"]
        >= mem_big["recording_peak_rss_kib"]
    ):
        failures.append(
            f"spill: spilled recording peaked at "
            f"{spill_big['recording_peak_rss_kib']} KiB, not below the "
            f"in-memory recording's {mem_big['recording_peak_rss_kib']} KiB"
        )
    row = {
        "base_n": base_n,
        "big_n": big_n,
        "spill_base": spill_base,
        "spill_big": spill_big,
        "mem_big": mem_big,
        "rss_flatness": round(flatness, 3),
    }
    return row, failures


# ----------------------------------------------------------------------
# Harness.


def run_bench(
    corpus_count: int = 30,
    runs: int = 2,
    max_tests: int = 3,
    loop_n: int = 10 * BASE_LOOP_N,
    repeat: int = 3,
    spill_base_n: int = 50_000,
    out_path: pathlib.Path = OUT_PATH,
) -> dict:
    identity_row, failures = bench_identity(corpus_count, runs, max_tests)
    throughput_row, t_failures = bench_throughput(loop_n, repeat)
    spill_row, s_failures = bench_spill(spill_base_n)
    failures += t_failures + s_failures
    payload = {
        "schema_version": SCHEMA_VERSION,
        "scenario": {
            "corpus_count": corpus_count,
            "runs": runs,
            "max_tests": max_tests,
            "loop_n": loop_n,
            "repeat": repeat,
            "spill_base_n": spill_base_n,
        },
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "identity": identity_row,
        "throughput": throughput_row,
        "spill": spill_row,
        "required": {
            "ratio": REQUIRED_RATIO,
            "speedup": REQUIRED_SPEEDUP,
            "events_per_s_per_compressed_byte":
                REQUIRED_EV_PER_COMPRESSED_BYTE,
            "rss_flatness": REQUIRED_RSS_FLATNESS,
        },
        "failures": failures,
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _summarize(payload: dict) -> str:
    identity = payload["identity"]
    throughput = payload["throughput"]
    spill = payload["spill"]
    lines = [
        "compressed traces ({} subjects, {} traces)".format(
            identity["subjects"], identity["traces"]
        ),
        "  identity     {} rows -> {} plan rows ({}x), "
        "{} skipped in sweeps".format(
            identity["rows"], identity["plan_rows"], identity["ratio"],
            identity["rows_skipped"],
        ),
        "  10x spin     {:,} ev/s compressed vs {:,} ev/s packed "
        "({}x; ratio {}x; {} ev/s per plan byte)".format(
            throughput["compressed_events_per_s"],
            throughput["packed_events_per_s"],
            throughput["speedup"],
            throughput["ratio"],
            throughput["events_per_s_per_compressed_byte"],
        ),
        "  spill RSS    {} KiB (1x) -> {} KiB (10x, {}x) vs "
        "{} KiB in-memory".format(
            spill["spill_base"]["recording_peak_rss_kib"],
            spill["spill_big"]["recording_peak_rss_kib"],
            spill["rss_flatness"],
            spill["mem_big"]["recording_peak_rss_kib"],
        ),
    ]
    for failure in payload["failures"]:
        lines.append(f"  GATE FAILED: {failure}")
    return "\n".join(lines)


def test_compressed_traces_smoke(tmp_path):
    """Quick variant: identity gates must hold; perf gates enforced."""
    payload = run_bench(
        corpus_count=8,
        runs=2,
        max_tests=2,
        repeat=2,
        spill_base_n=12_000,
        out_path=tmp_path / "BENCH_compressed_smoke.json",
    )
    try:
        from conftest import report_table

        report_table("compressed_traces_smoke", _summarize(payload))
    except ImportError:  # standalone collection
        pass
    assert not payload["failures"], payload["failures"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--corpus-count", type=int, default=30)
    parser.add_argument("--runs", type=int, default=2)
    parser.add_argument("--max-tests", type=int, default=3)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--spill-base-n", type=int, default=50_000)
    parser.add_argument(
        "--quick", action="store_true", help="smaller workload (CI smoke)"
    )
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args(argv)
    corpus_count = 8 if args.quick else args.corpus_count
    max_tests = 2 if args.quick else args.max_tests
    repeat = 2 if args.quick else args.repeat
    spill_base_n = 12_000 if args.quick else args.spill_base_n
    payload = run_bench(
        corpus_count=corpus_count,
        runs=args.runs,
        max_tests=max_tests,
        repeat=repeat,
        spill_base_n=spill_base_n,
        out_path=args.out,
    )
    print(_summarize(payload))
    print(f"wrote {args.out}")
    return 1 if payload["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
