"""Ablation: seed-suite coverage drives pair discovery.

The whole pipeline sees only what the sequential seed tests execute
(§3.1 operates on traces).  This experiment compares each subject's
default seed suite against an impoverished one-call suite and a
state-rich suite, showing how the racing-pair count scales with seed
coverage — the main reason our absolute Table-4 counts differ from the
paper's (EXPERIMENTS.md).
"""

from conftest import report_table

from repro.narada import Narada
from repro.subjects import get_subject

#: Replacement seed suites per subject: (minimal, rich).
VARIANTS = {
    "C1": (
        """
        test SeedMin {
          WriteBehindQueues factory = new WriteBehindQueues();
          WriteBehindQueue cwbq = factory.createCoalescedWriteBehindQueue();
          WriteBehindQueue swbq = factory.createSafeWriteBehindQueue(cwbq);
          swbq.removeFirst();
        }
        """,
        """
        test SeedRich {
          WriteBehindQueues factory = new WriteBehindQueues();
          WriteBehindQueue cwbq = factory.createCoalescedWriteBehindQueue();
          WriteBehindQueue swbq = factory.createSafeWriteBehindQueue(cwbq);
          DelayedEntry e1 = new DelayedEntry();
          DelayedEntry e2 = new DelayedEntry();
          swbq.addFirst(e1);
          swbq.addLast(e2);
          bool offered = swbq.offer(new DelayedEntry());
          DelayedEntry first = swbq.getFirst();
          DelayedEntry peeked = swbq.peek();
          bool has = swbq.contains(e2);
          int n = swbq.size();
          bool empty = swbq.isEmpty();
          DelayedEntry r1 = swbq.removeFirst();
          DelayedEntry r2 = swbq.removeLast();
          DelayedEntry polled = swbq.poll();
          swbq.removeAll();
          swbq.clear();
        }
        """,
    ),
    "C5": (
        """
        test SeedMin {
          DoubleIntIndex idx = new DoubleIntIndex(8);
          bool a1 = idx.addUnsorted(5, 50);
          int n = idx.size();
        }
        """,
        """
        test SeedRich {
          DoubleIntIndex idx = new DoubleIntIndex(8);
          bool a1 = idx.addUnsorted(5, 50);
          bool a2 = idx.addSorted(7, 70);
          bool a3 = idx.addUnique(3, 30);
          idx.fastQuickSort();
          int f1 = idx.findFirstEqualKeyIndex(5);
          int l1 = idx.lookup(5);
          idx.swap(0, 1);
          int sk = idx.sumKeys();
          bool ck = idx.containsKey(3);
          DoubleIntIndex target = new DoubleIntIndex(8);
          idx.copyTo(target);
          idx.removeRange(1, 2);
          idx.remove(0);
          idx.removeLast();
          int k0 = idx.getKey(0);
          idx.setKey(0, 9);
          idx.setValue(0, 90);
          idx.incrementValue(0);
          int kl = idx.keyOfLast();
          idx.markUnsorted();
          bool srt = idx.isSorted();
          idx.setSize(1);
          idx.clear();
        }
        """,
    ),
}


def _strip_tests(source: str) -> str:
    """Remove the subject's own `test ... { ... }` blocks."""
    out = []
    depth = 0
    in_test = False
    i = 0
    while i < len(source):
        if not in_test and source.startswith("test ", i) and (
            i == 0 or source[i - 1] in "\n\r\t "
        ):
            in_test = True
            depth = 0
        if in_test:
            if source[i] == "{":
                depth += 1
            elif source[i] == "}":
                depth -= 1
                if depth == 0:
                    in_test = False
            i += 1
            continue
        out.append(source[i])
        i += 1
    return "".join(out)


def pairs_with_suite(key: str, suite: str) -> int:
    subject = get_subject(key)
    source = _strip_tests(subject.source) + suite
    narada = Narada(source)
    return narada.synthesize_for_class(subject.class_name).pair_count


def test_seed_sensitivity(benchmark):
    def measure():
        rows = []
        for key, (minimal, rich) in sorted(VARIANTS.items()):
            subject = get_subject(key)
            default = Narada(subject.load()).synthesize_for_class(
                subject.class_name
            ).pair_count
            rows.append(
                (
                    key,
                    pairs_with_suite(key, minimal),
                    default,
                    pairs_with_suite(key, rich),
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    for key, minimal, default, rich in rows:
        # Pair discovery grows monotonically with seed coverage.
        assert minimal <= default, (key, minimal, default)
        assert minimal < rich, (key, minimal, rich)

    report_table(
        "ablation_seeds",
        "\n".join(
            [
                "Ablation: racing pairs vs seed-suite coverage",
                f"{'class':<8}{'minimal seed':>13}{'default':>9}{'rich seed':>11}",
                "-" * 42,
                *[
                    f"{key:<8}{minimal:>13}{default:>9}{rich:>11}"
                    for key, minimal, default, rich in rows
                ],
            ]
        ),
    )
