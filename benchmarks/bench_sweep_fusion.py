"""Fused-sweep benchmark + perf gate: writes BENCH_sweep.json.

Measures the claim the unified analysis engine makes: running the fuzz
loop's detector stack (FastTrack + Eraser + Djit+ + adjacency probe) as
**one** fused sweep of a stored packed trace is substantially faster
than the four singleton sweeps it replaced, because opcode decode, the
per-thread clock cache, and the per-address slot lookup are shared
across passes instead of repeated per pass.

Workload: the C1..C9 paper subjects' seed suites, recorded once as
packed traces (with the stack's ``interest_union``, exactly like the
production fuzz path) and then swept repeatedly from storage.  Per
trace, best-of-``rounds`` wall time of

* **sequential** — four fresh pass instances, four ``run_sweep`` calls
  (the engine's ``feed_packed`` shim path), and
* **fused** — four fresh pass instances, one 4-pass ``run_sweep``.

Gates: the race/probe reports of the two paths must be identical on
every trace (correctness — always enforced), and the summed fused
throughput must be >= 1.5x the sequential one (the tentpole's
acceptance ratio).  A timed fused sweep also records the per-pass time
share (the same breakdown ``repro run --trace-stats`` prints).

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep_fusion.py \
        [--rounds N] [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.analysis.sweep import interest_union, run_sweep  # noqa: E402
from repro.detect import (  # noqa: E402
    DjitDetector,
    EraserDetector,
    FastTrackDetector,
)
from repro.fuzz.probes import AdjacencyProbe  # noqa: E402
from repro.runtime import VM  # noqa: E402
from repro.subjects import all_subjects  # noqa: E402
from repro.trace.columnar import ColumnarRecorder, PackedTrace  # noqa: E402

OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_sweep.json"

#: Payload schema; bump on any shape change so stale reports are caught
#: by ``perf_regression.py --check`` instead of KeyErrors downstream.
SCHEMA_VERSION = 1

#: The tentpole's acceptance ratio: one fused sweep of the 4-pass stack
#: must beat the four singleton sweeps it replaced by this much.
REQUIRED_FUSION_SPEEDUP = 1.5

PASSES = (FastTrackDetector, EraserDetector, DjitDetector, AdjacencyProbe)


def record_seed_traces() -> list[tuple[str, PackedTrace]]:
    """Record every C1..C9 seed test as a packed trace.

    The recorder gets the stack's interest union, so the stored columns
    are exactly what the production fuzz loop sweeps.
    """
    interests = interest_union(PASSES)
    traces: list[tuple[str, PackedTrace]] = []
    for subject in all_subjects():
        table = subject.load()
        for test in table.program.tests:
            vm = VM(table, seed=0)
            recorder = ColumnarRecorder(test.name, interests=interests)
            vm.run_test(test.name, listeners=(recorder,))
            traces.append((subject.key, recorder.packed))
    return traces


def _stack_payload(passes) -> tuple:
    """Canonical report of one swept stack, for identity comparison."""
    fasttrack, eraser, djit, probe = passes
    detector_part = tuple(
        (
            [
                (r.detector, r.class_name, r.field_name, r.address, r.first, r.second)
                for r in d.races
            ],
            d.races.dynamic_count,
        )
        for d in (fasttrack, eraser, djit)
    )
    return detector_part + (tuple(sorted(probe.confirmed)),)


def bench_fusion(traces, rounds: int) -> tuple[dict, list[str]]:
    """Best-of-``rounds`` fused vs sequential sweep times, summed."""
    failures: list[str] = []
    total_events = 0
    seq_total = fused_total = 0.0
    per_trace: list[dict] = []
    per_pass_acc = [0.0] * len(PASSES)
    for key, packed in traces:
        n = len(packed)
        total_events += n
        seq_best = fused_best = float("inf")
        seq_payload = fused_payload = None
        for _ in range(rounds):
            passes = [cls() for cls in PASSES]
            start = time.perf_counter()
            for sweep_pass in passes:
                run_sweep((sweep_pass,), packed)
            seq_best = min(seq_best, time.perf_counter() - start)
            seq_payload = _stack_payload(passes)

            passes = [cls() for cls in PASSES]
            start = time.perf_counter()
            run_sweep(tuple(passes), packed)
            fused_best = min(fused_best, time.perf_counter() - start)
            fused_payload = _stack_payload(passes)
        if seq_payload != fused_payload:
            failures.append(f"{key}: fused and sequential reports differ")
        # Per-pass share from the timed kernel variant (not gated; the
        # timing instrumentation itself costs, so this is a breakdown
        # of the instrumented sweep, not of fused_best).
        timings: list[float] = []
        run_sweep(
            tuple(cls() for cls in PASSES), packed, timings=timings
        )
        for i, seconds in enumerate(timings):
            per_pass_acc[i] += seconds
        seq_total += seq_best
        fused_total += fused_best
        per_trace.append(
            {
                "subject": key,
                "events": n,
                "sequential_us": round(seq_best * 1e6, 1),
                "fused_us": round(fused_best * 1e6, 1),
                "speedup": round(seq_best / fused_best, 2),
            }
        )
    speedup = seq_total / fused_total
    if speedup < REQUIRED_FUSION_SPEEDUP:
        failures.append(
            f"fusion: {speedup:.2f}x < required {REQUIRED_FUSION_SPEEDUP}x"
        )
    share_total = sum(per_pass_acc) or 1.0
    rows = {
        "events": total_events,
        "sequential_events_per_s": round(total_events / seq_total),
        "fused_events_per_s": round(total_events / fused_total),
        "speedup": round(speedup, 2),
        "per_trace": per_trace,
        "per_pass_share": {
            cls.name: round(per_pass_acc[i] / share_total, 3)
            for i, cls in enumerate(PASSES)
        },
    }
    return rows, failures


def run_bench(rounds: int, out_path: pathlib.Path | None = None) -> dict:
    traces = record_seed_traces()
    fusion, failures = bench_fusion(traces, rounds)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "scenario": {
            "subjects": sorted({key for key, _ in traces}),
            "traces": len(traces),
            "events": fusion["events"],
            "passes": [cls.name for cls in PASSES],
            "rounds": rounds,
        },
        "python": platform.python_version(),
        "fusion": fusion,
        "required_fusion_speedup": REQUIRED_FUSION_SPEEDUP,
        "failures": failures,
        "pass": not failures,
    }
    out_path = out_path or OUT_PATH
    out_path.parent.mkdir(exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _summarize(payload: dict) -> str:
    fusion = payload["fusion"]
    lines = [
        "sweep fusion ({} traces, {} events, {} passes)".format(
            payload["scenario"]["traces"],
            fusion["events"],
            len(payload["scenario"]["passes"]),
        ),
        "  sequential  {:>12,} ev/s".format(fusion["sequential_events_per_s"]),
        "  fused       {:>12,} ev/s  ({}x, required {}x)".format(
            fusion["fused_events_per_s"],
            fusion["speedup"],
            payload["required_fusion_speedup"],
        ),
        "  pass share  "
        + ", ".join(
            f"{name}={share:.0%}"
            for name, share in fusion["per_pass_share"].items()
        ),
    ]
    for failure in payload["failures"]:
        lines.append(f"  GATE FAILED: {failure}")
    return "\n".join(lines)


def test_sweep_fusion_smoke(tmp_path):
    """Quick variant: identity gate must hold; speedup recorded."""
    payload = run_bench(rounds=3, out_path=tmp_path / "BENCH_sweep_smoke.json")
    try:
        from conftest import report_table

        report_table("sweep_fusion_smoke", _summarize(payload))
    except ImportError:  # standalone collection
        pass
    identity_failures = [
        f for f in payload["failures"] if "reports differ" in f
    ]
    assert not identity_failures, identity_failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=50)
    parser.add_argument(
        "--quick", action="store_true", help="fewer rounds (CI smoke)"
    )
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args(argv)
    rounds = 10 if args.quick else args.rounds
    payload = run_bench(rounds=rounds, out_path=args.out)
    print(_summarize(payload))
    print(f"report: {args.out}")
    return 1 if payload["failures"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
