"""Ablation: prefix fallback for underivable contexts (§4).

When the exact owner of a raced field cannot be driven from the client
(C4's internal buffer), the paper still synthesizes a test that shares
the deepest settable ancestor.  Disabling the fallback leaves those
pairs with bare, unshared tests; the races that the fallback exposes
through receiver sharing disappear.
"""

from conftest import report_table

from repro.context import derive_plans
from repro.fuzz import RaceFuzzer
from repro.narada import Narada
from repro.subjects import get_subject
from repro.synth import TestSynthesizer


def build(allow_prefix_fallback):
    subject = get_subject("C4")
    narada = Narada(subject.load())
    report = narada.synthesize_for_class(subject.class_name)
    plans = derive_plans(
        report.pairs,
        narada.analysis(),
        narada.table,
        allow_prefix_fallback=allow_prefix_fallback,
    )
    tests = TestSynthesizer(narada.table).synthesize(plans)
    return narada, plans, tests


def detected_races(narada, tests, cap=25):
    fuzzer = RaceFuzzer(narada.table, random_runs=3, directed=False)
    keys = set()
    for test in tests[:cap]:
        keys |= fuzzer.fuzz(test).detected.static_keys()
    return keys


def test_ablation_prefix_fallback(benchmark):
    narada, with_plans, with_tests = benchmark.pedantic(
        lambda: build(allow_prefix_fallback=True), rounds=1, iterations=1
    )
    _, without_plans, without_tests = build(allow_prefix_fallback=False)

    shared_with = sum(1 for p in with_plans if p.shared_slot is not None)
    shared_without = sum(1 for p in without_plans if p.shared_slot is not None)
    # The fallback is what gives C4's pairs any sharing at all.
    assert shared_with > shared_without

    with_races = detected_races(narada, with_tests)
    without_races = detected_races(narada, without_tests)
    assert len(with_races) >= len(without_races)
    assert with_races, "fallback tests should expose at least one race"

    report_table(
        "ablation_prefix",
        "\n".join(
            [
                "Ablation: prefix fallback for underivable contexts (C4)",
                f"{'variant':<26}{'shared plans':>13}{'tests':>7}{'races':>7}",
                "-" * 54,
                f"{'with fallback (paper)':<26}{shared_with:>13}"
                f"{len(with_tests):>7}{len(with_races):>7}",
                f"{'without fallback':<26}{shared_without:>13}"
                f"{len(without_tests):>7}{len(without_races):>7}",
            ]
        ),
    )
