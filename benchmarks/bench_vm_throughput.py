"""VM micro-benchmarks: the cost model behind the pipeline timings.

Not a paper table — engineering context for Table 4's synthesis times:
how fast the substrate parses, executes, and how much the detectors add
per event.  The workload definitions live in :mod:`vm_scenarios`, shared
with the ``perf_regression.py`` gate so both measure the same thing.
"""

from conftest import report_table
from vm_scenarios import HOT_LOOP, SCENARIOS, run_scenario

from repro.detect import DjitDetector, EraserDetector, FastTrackDetector
from repro.lang import parse
from repro.trace import Recorder

_run = run_scenario


def test_parse_throughput(benchmark):
    source = "\n".join(HOT_LOOP for _ in range(5))
    program = benchmark(lambda: parse(source))
    assert len(program.classes) == 5


def test_bare_execution(benchmark):
    result = benchmark(_run)
    assert result.completed


def test_execution_with_recorder(benchmark):
    result = benchmark(lambda: _run(listeners=(Recorder(),)))
    assert result.completed


def test_execution_with_fasttrack(benchmark):
    result = benchmark(lambda: _run(listeners=(FastTrackDetector(),)))
    assert result.completed


def test_execution_with_all_detectors(benchmark):
    result = benchmark(
        lambda: _run(
            listeners=(FastTrackDetector(), EraserDetector(), DjitDetector())
        )
    )
    assert result.completed


def test_locked_loop_with_fasttrack(benchmark):
    result = benchmark(
        lambda: _run(listeners=(FastTrackDetector(),), method="spinLocked")
    )
    assert result.completed


def test_throughput_table(benchmark):
    import time

    def measure(factory, label):
        start = time.perf_counter()
        result = _run(listeners=factory())
        elapsed = time.perf_counter() - start
        return label, result.steps, result.steps / elapsed

    rows = benchmark.pedantic(
        lambda: [
            measure(tuple, "bare VM"),
            measure(lambda: (Recorder(),), "+ recorder"),
            measure(lambda: (FastTrackDetector(),), "+ FastTrack"),
            measure(lambda: (DjitDetector(),), "+ Djit+"),
            measure(
                lambda: (FastTrackDetector(), EraserDetector(), DjitDetector()),
                "+ all detectors",
            ),
        ],
        rounds=1,
        iterations=1,
    )
    report_table(
        "vm_throughput",
        "\n".join(
            [
                "VM throughput (two threads, hot field-update loop)",
                f"{'configuration':<18}{'events':>8}{'events/s':>12}",
                "-" * 40,
                *[
                    f"{label:<18}{steps:>8}{rate:>12,.0f}"
                    for label, steps, rate in rows
                ],
            ]
        ),
    )


def test_perf_regression_gate(benchmark):
    """Run the BENCH_vm.json gate as part of the bench suite."""
    import perf_regression

    payload = benchmark.pedantic(
        lambda: perf_regression.collect(rounds=3), rounds=1, iterations=1
    )
    path = perf_regression.write_report(payload)
    report_table(
        "vm_perf_gate",
        "\n".join(
            [
                f"perf gate ({path.name}): {'PASS' if payload['pass'] else 'FAIL'}",
                *[
                    f"  {name:<16}{payload['current'][name]['events_per_sec']:>12,.0f}"
                    f" ev/s  {payload['speedup'].get(name, '-')}x"
                    for name in sorted(SCENARIOS)
                ],
            ]
        ),
    )
    assert payload["pass"], payload["failures"]
