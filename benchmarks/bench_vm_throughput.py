"""VM micro-benchmarks: the cost model behind the pipeline timings.

Not a paper table — engineering context for Table 4's synthesis times:
how fast the substrate parses, executes, and how much the detectors add
per event.
"""

from conftest import report_table

from repro.detect import DjitDetector, EraserDetector, FastTrackDetector
from repro.lang import load, parse
from repro.runtime import Execution, RoundRobinScheduler, VM
from repro.trace import Recorder

HOT_LOOP = """
class Worker {
  int acc;
  void spin(int n) {
    int i = 0;
    while (i < n) {
      this.acc = this.acc + i;
      i = i + 1;
    }
  }
  synchronized void spinLocked(int n) {
    int i = 0;
    while (i < n) {
      this.acc = this.acc + i;
      i = i + 1;
    }
  }
}
test Seed { Worker w = new Worker(); }
"""

_table = load(HOT_LOOP)
LOOP_N = 300


def _run(listeners=(), threads=2, method="spin"):
    vm = VM(_table)
    _, env = vm.run_test("Seed")
    worker = env["w"]
    execution = Execution(vm, listeners=listeners)
    for _ in range(threads):
        execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, worker, method, [LOOP_N])
        )
    return execution.run(RoundRobinScheduler())


def test_parse_throughput(benchmark):
    source = "\n".join(HOT_LOOP for _ in range(5))
    program = benchmark(lambda: parse(source))
    assert len(program.classes) == 5


def test_bare_execution(benchmark):
    result = benchmark(_run)
    assert result.completed


def test_execution_with_recorder(benchmark):
    result = benchmark(lambda: _run(listeners=(Recorder(),)))
    assert result.completed


def test_execution_with_fasttrack(benchmark):
    result = benchmark(lambda: _run(listeners=(FastTrackDetector(),)))
    assert result.completed


def test_execution_with_all_detectors(benchmark):
    result = benchmark(
        lambda: _run(
            listeners=(FastTrackDetector(), EraserDetector(), DjitDetector())
        )
    )
    assert result.completed


def test_throughput_table(benchmark):
    import time

    def measure(factory, label):
        start = time.perf_counter()
        result = _run(listeners=factory())
        elapsed = time.perf_counter() - start
        return label, result.steps, result.steps / elapsed

    rows = benchmark.pedantic(
        lambda: [
            measure(tuple, "bare VM"),
            measure(lambda: (Recorder(),), "+ recorder"),
            measure(lambda: (FastTrackDetector(),), "+ FastTrack"),
            measure(lambda: (DjitDetector(),), "+ Djit+"),
            measure(
                lambda: (FastTrackDetector(), EraserDetector(), DjitDetector()),
                "+ all detectors",
            ),
        ],
        rounds=1,
        iterations=1,
    )
    report_table(
        "vm_throughput",
        "\n".join(
            [
                "VM throughput (two threads, hot field-update loop)",
                f"{'configuration':<18}{'events':>8}{'events/s':>12}",
                "-" * 40,
                *[
                    f"{label:<18}{steps:>8}{rate:>12,.0f}"
                    for label, steps, rate in rows
                ],
            ]
        ),
    )
