"""Shared infrastructure for the paper-reproduction benchmarks.

Benchmarks register their rendered tables via :func:`report_table`; a
``pytest_terminal_summary`` hook prints every registered table after the
run (so they are visible even with output capture on) and writes each to
``benchmarks/out/<name>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

_OUT_DIR = pathlib.Path(__file__).parent / "out"
_TABLES: dict[str, str] = {}


def report_table(name: str, text: str) -> None:
    """Register a rendered table for the terminal summary and disk."""
    _TABLES[name] = text
    _OUT_DIR.mkdir(exist_ok=True)
    (_OUT_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "paper reproduction tables")
    for name in sorted(_TABLES):
        terminalreporter.write_line("")
        terminalreporter.write_line(_TABLES[name])
    terminalreporter.write_line("")
    terminalreporter.write_line(
        f"(tables also written to {_OUT_DIR}/<name>.txt)"
    )
