"""Perf-regression gate: measure VM throughput, write BENCH_vm.json.

Runs the shared :mod:`vm_scenarios` workloads (the same ones
``bench_vm_throughput.py`` times) and compares events/sec against the
pre-optimization baselines recorded below.  Results land in
``benchmarks/out/BENCH_vm.json``; the process exits non-zero if the
hot-path overhaul's acceptance ratios regress.

Usage::

    PYTHONPATH=src python benchmarks/perf_regression.py [--rounds N]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from vm_scenarios import LOOP_N, SCENARIOS, measure  # noqa: E402

#: Pre-overhaul throughput (events/sec, best-of-3) on the same scenarios,
#: measured at the seed revision before the VM hot-path PR.
BASELINE_EVENTS_PER_SEC = {
    "bare": 78_990.0,
    "recorder": 70_387.0,
    "fasttrack": 40_911.0,
    "djit": 39_796.0,
    "all_detectors": 21_255.0,
}

#: Minimum speedup over baseline the overhaul must hold on to.
REQUIRED_SPEEDUP = {
    "bare": 2.0,
    "fasttrack": 1.5,
}


def collect(rounds: int) -> dict:
    """Measure every scenario and assemble the BENCH_vm.json payload."""
    current = {name: measure(name, rounds=rounds) for name in SCENARIOS}
    speedup = {
        name: round(current[name]["events_per_sec"] / baseline, 2)
        for name, baseline in BASELINE_EVENTS_PER_SEC.items()
    }
    failures = [
        f"{name}: {speedup[name]}x < required {required}x"
        for name, required in REQUIRED_SPEEDUP.items()
        if speedup[name] < required
    ]
    return {
        "scenario": {
            "program": "Worker.spin hot loop",
            "loop_n": LOOP_N,
            "threads": 2,
            "scheduler": "RoundRobinScheduler",
        },
        "python": platform.python_version(),
        "baseline_events_per_sec": BASELINE_EVENTS_PER_SEC,
        "current": current,
        "speedup": speedup,
        "required_speedup": REQUIRED_SPEEDUP,
        "failures": failures,
        "pass": not failures,
    }


def write_report(payload: dict, out_dir: pathlib.Path | None = None) -> pathlib.Path:
    out_dir = out_dir or pathlib.Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    path = out_dir / "BENCH_vm.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    def _positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError("--rounds must be >= 1")
        return value

    parser.add_argument(
        "--rounds", type=_positive_int, default=5,
        help="measurement rounds per scenario (best-of-N)",
    )
    args = parser.parse_args(argv)
    payload = collect(rounds=args.rounds)
    path = write_report(payload)
    for name, stats in sorted(payload["current"].items()):
        ratio = payload["speedup"].get(name)
        suffix = f"  ({ratio}x baseline)" if ratio is not None else ""
        print(f"{name:18s} {stats['events_per_sec']:>12,.0f} ev/s{suffix}")
    print(f"report: {path}")
    if payload["failures"]:
        print("PERF REGRESSION:", "; ".join(payload["failures"]))
        return 1
    print("perf gate: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
