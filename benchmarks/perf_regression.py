"""Perf-regression gate: measure VM throughput, write BENCH_vm.json.

Runs the shared :mod:`vm_scenarios` workloads (the same ones
``bench_vm_throughput.py`` times) and compares events/sec against the
pre-optimization baselines recorded below.  Results land in
``benchmarks/out/BENCH_vm.json``; the process exits non-zero if the
hot-path overhaul's acceptance ratios regress.

``--check`` skips measurement and instead validates the recorded
``benchmarks/out/BENCH_*.json`` reports: each expected file must exist
and carry the current ``schema_version``, otherwise the gate fails with
a message naming the report and the command that regenerates it (rather
than a traceback from whatever consumer reads the stale payload first).

Usage::

    PYTHONPATH=src python benchmarks/perf_regression.py [--rounds N]
    PYTHONPATH=src python benchmarks/perf_regression.py --check
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from vm_scenarios import LOOP_N, SCENARIOS, measure  # noqa: E402

#: BENCH_vm.json payload schema.  v1 was the unversioned original; v2
#: added this field.  Bump on any shape change.
SCHEMA_VERSION = 2

#: Pre-overhaul throughput (events/sec, best-of-3) on the same scenarios,
#: measured at the seed revision before the VM hot-path PR.
BASELINE_EVENTS_PER_SEC = {
    "bare": 78_990.0,
    "recorder": 70_387.0,
    "fasttrack": 40_911.0,
    "djit": 39_796.0,
    "all_detectors": 21_255.0,
}

#: Minimum speedup over baseline the overhaul must hold on to.
REQUIRED_SPEEDUP = {
    "bare": 2.0,
    "fasttrack": 1.5,
}


def collect(rounds: int) -> dict:
    """Measure every scenario and assemble the BENCH_vm.json payload."""
    current = {name: measure(name, rounds=rounds) for name in SCENARIOS}
    speedup = {
        name: round(current[name]["events_per_sec"] / baseline, 2)
        for name, baseline in BASELINE_EVENTS_PER_SEC.items()
    }
    failures = [
        f"{name}: {speedup[name]}x < required {required}x"
        for name, required in REQUIRED_SPEEDUP.items()
        if speedup[name] < required
    ]
    return {
        "schema_version": SCHEMA_VERSION,
        "scenario": {
            "program": "Worker.spin hot loop",
            "loop_n": LOOP_N,
            "threads": 2,
            "scheduler": "RoundRobinScheduler",
        },
        "python": platform.python_version(),
        "baseline_events_per_sec": BASELINE_EVENTS_PER_SEC,
        "current": current,
        "speedup": speedup,
        "required_speedup": REQUIRED_SPEEDUP,
        "failures": failures,
        "pass": not failures,
    }


#: Every report the benchmark suite is expected to have produced, the
#: schema version consumers of this revision understand, and the command
#: that regenerates it.  An absent ``schema_version`` key reads as 0
#: (the unversioned v1-era payloads), so every pre-versioning report is
#: reported as stale rather than crashing a consumer.
EXPECTED_REPORTS = {
    "BENCH_vm.json": (
        SCHEMA_VERSION,
        "PYTHONPATH=src python benchmarks/perf_regression.py",
    ),
    "BENCH_pipeline.json": (
        2,
        "PYTHONPATH=src python benchmarks/bench_pipeline_e2e.py",
    ),
    "BENCH_daemon.json": (
        1,
        "PYTHONPATH=src python benchmarks/bench_daemon_serve.py",
    ),
    "BENCH_trace.json": (
        1,
        "PYTHONPATH=src python benchmarks/bench_trace_memory.py",
    ),
    "BENCH_sweep.json": (
        1,
        "PYTHONPATH=src python benchmarks/bench_sweep_fusion.py",
    ),
    "BENCH_fault.json": (
        1,
        "PYTHONPATH=src python benchmarks/bench_fault_overhead.py",
    ),
    "BENCH_chaos.json": (
        1,
        "PYTHONPATH=src python benchmarks/bench_chaos_daemon.py",
    ),
    "BENCH_corpus.json": (
        1,
        "PYTHONPATH=src python benchmarks/bench_corpus_recall.py",
    ),
    "BENCH_compressed.json": (
        1,
        "PYTHONPATH=src python benchmarks/bench_compressed_traces.py",
    ),
    "BENCH_static.json": (
        1,
        "PYTHONPATH=src python benchmarks/bench_static_filter.py",
    ),
}


def check_reports(out_dir: pathlib.Path | None = None) -> list[str]:
    """Validate the recorded BENCH_*.json reports; return problems.

    Each entry names the offending report and how to regenerate it —
    this is the ``--check`` output, designed to fail loudly and legibly
    when a report is missing, unparseable, or written by an older
    benchmark revision.
    """
    out_dir = out_dir or pathlib.Path(__file__).parent / "out"
    problems: list[str] = []
    for name, (required, regen) in sorted(EXPECTED_REPORTS.items()):
        path = out_dir / name
        if not path.is_file():
            problems.append(f"{path}: missing — regenerate with `{regen}`")
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            problems.append(
                f"{path}: unreadable ({error}) — regenerate with `{regen}`"
            )
            continue
        found = payload.get("schema_version", 0)
        if found < required:
            problems.append(
                f"{path}: schema_version {found} < expected {required}"
                f" — regenerate with `{regen}`"
            )
    return problems


def write_report(payload: dict, out_dir: pathlib.Path | None = None) -> pathlib.Path:
    out_dir = out_dir or pathlib.Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    path = out_dir / "BENCH_vm.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    def _positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError("--rounds must be >= 1")
        return value

    parser.add_argument(
        "--rounds", type=_positive_int, default=5,
        help="measurement rounds per scenario (best-of-N)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="validate recorded BENCH_*.json reports instead of measuring",
    )
    args = parser.parse_args(argv)
    if args.check:
        problems = check_reports()
        if problems:
            for problem in problems:
                print(f"STALE BENCH REPORT: {problem}")
            return 1
        print(f"bench reports: all {len(EXPECTED_REPORTS)} current")
        return 0
    payload = collect(rounds=args.rounds)
    path = write_report(payload)
    for name, stats in sorted(payload["current"].items()):
        ratio = payload["speedup"].get(name)
        suffix = f"  ({ratio}x baseline)" if ratio is not None else ""
        print(f"{name:18s} {stats['events_per_sec']:>12,.0f} ev/s{suffix}")
    print(f"report: {path}")
    if payload["failures"]:
        print("PERF REGRESSION:", "; ".join(payload["failures"]))
        return 1
    print("perf gate: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
