"""Warm-daemon service benchmark + gates: writes BENCH_daemon.json.

Starts a :class:`ReproDaemon` in-process on a unix socket, then drives
it with :class:`DaemonClient` the way a long-lived tool integration
would:

* **cold request** — first ``detect`` over the workload subjects: pays
  pipeline work plus one pool spawn, populates the daemon's cache;
* **warm latency** — the identical request repeated: every stage
  replays from the in-process cache, so this measures pure service
  overhead (framing + dispatch + cache lookup);
* **sustained throughput** — several concurrent clients issuing warm
  requests back-to-back; reported as requests per second end-to-end;
* **digest identity** — the daemon's per-subject digests must equal a
  direct in-process :class:`PipelineOrchestrator` run with the same
  config: the service front-end must not perturb results, ever.

Gates (always enforced — both hold on any machine because warm requests
replay from cache and the daemon reuses the exact pipeline code path):

* digest identity between daemon responses and the direct run;
* warm median latency >= 2x faster than the cold request.

Sustained requests/s is recorded, not gated (machine-dependent).

Usage::

    PYTHONPATH=src python benchmarks/bench_daemon_serve.py \
        [--subjects C1,C8] [--runs N] [--repeats N] [--clients N] \
        [--jobs N] [--out PATH]

or via pytest (reduced repeats): see ``test_daemon_serve_smoke`` below.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import shutil
import statistics
import sys
import tempfile
import threading
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.narada import (  # noqa: E402
    ArtifactCache,
    DaemonClient,
    PipelineConfig,
    PipelineOrchestrator,
    ReproDaemon,
    subject_specs,
)
from repro.subjects import get_subject  # noqa: E402

OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_daemon.json"

#: Payload schema; bump on any shape change so stale reports are caught
#: by ``perf_regression.py --check``.
SCHEMA_VERSION = 1

DEFAULT_SUBJECTS = ["C1", "C8"]
DEFAULT_RUNS = 2
DEFAULT_REPEATS = 10
DEFAULT_CLIENTS = 4
DEFAULT_JOBS = 2

#: Warm requests replay from cache; anything under 2x means the service
#: layer itself is eating the savings.
REQUIRED_WARM_SPEEDUP = 2.0


def _timed_detect(client: DaemonClient, subjects, runs):
    start = time.perf_counter()
    response = client.request(
        {"op": "detect", "subjects": subjects, "runs": runs}
    )
    elapsed = time.perf_counter() - start
    if not response.get("ok"):
        raise RuntimeError(f"daemon error: {response.get('error')}")
    return elapsed, response


def _digests(response: dict) -> dict:
    return {
        name: entry["digest"]
        for name, entry in response["subjects"].items()
    }


def run_bench(
    subject_keys=None,
    runs: int = DEFAULT_RUNS,
    repeats: int = DEFAULT_REPEATS,
    clients: int = DEFAULT_CLIENTS,
    jobs: int = DEFAULT_JOBS,
    out_path: pathlib.Path = OUT_PATH,
) -> dict:
    """Benchmark the daemon service path; write and return the payload."""
    subjects = subject_keys or DEFAULT_SUBJECTS
    workdir = tempfile.mkdtemp(prefix="repro-bench-daemon-")
    socket_path = os.path.join(workdir, "daemon.sock")
    daemon = ReproDaemon(
        socket_path=socket_path,
        jobs=jobs,
        cache=ArtifactCache(os.path.join(workdir, "cache")),
    )
    daemon.bind()
    server = threading.Thread(target=daemon.serve_forever, daemon=True)
    server.start()
    try:
        with DaemonClient(socket_path=socket_path) as client:
            cold_s, cold_response = _timed_detect(client, subjects, runs)
            warm_times = []
            for _ in range(repeats):
                elapsed, response = _timed_detect(client, subjects, runs)
                warm_times.append(elapsed)
                if _digests(response) != _digests(cold_response):
                    raise RuntimeError("warm digests drifted from cold")

        # Sustained throughput: N clients, each hammering warm requests.
        per_client = max(2, repeats // 2)
        errors: list[BaseException] = []

        def hammer():
            try:
                with DaemonClient(socket_path=socket_path) as c:
                    for _ in range(per_client):
                        _timed_detect(c, subjects, runs)
            except BaseException as exc:  # surface in the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer) for _ in range(clients)
        ]
        sustained_start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sustained_s = time.perf_counter() - sustained_start
        if errors:
            raise errors[0]
        total_requests = clients * per_client
        requests_per_s = total_requests / sustained_s
    finally:
        daemon.initiate_drain()
        server.join(timeout=30)
        shutil.rmtree(workdir, ignore_errors=True)

    # Direct in-process run with the same config: the ground truth the
    # daemon must match byte-for-byte.
    config = PipelineConfig(random_runs=runs)
    specs = subject_specs([get_subject(k) for k in subjects])
    with PipelineOrchestrator(jobs=1, cache=None, config=config) as orch:
        direct = {o.spec.name: o.digest() for o in orch.run(specs)}
    daemon_digests = _digests(cold_response)
    identical = daemon_digests == direct

    warm_median = statistics.median(warm_times)
    warm_speedup = cold_s / warm_median

    failures = []
    if not identical:
        failures.append(
            "digest identity: daemon responses differ from direct run"
        )
    if warm_speedup < REQUIRED_WARM_SPEEDUP:
        failures.append(
            f"warm latency: {warm_speedup:.1f}x < required "
            f"{REQUIRED_WARM_SPEEDUP}x (cold {cold_s:.3f}s, "
            f"warm median {warm_median:.3f}s)"
        )

    payload = {
        "schema_version": SCHEMA_VERSION,
        "scenario": {
            "subjects": subjects,
            "random_runs": runs,
            "repeats": repeats,
            "clients": clients,
            "requests_per_client": per_client,
            "jobs": jobs,
        },
        "machine": {
            "cpu_count": os.cpu_count() or 1,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "latency_s": {
            "cold": round(cold_s, 4),
            "warm_median": round(warm_median, 4),
            "warm_mean": round(statistics.fmean(warm_times), 4),
            "warm_max": round(max(warm_times), 4),
        },
        "throughput": {
            "sustained_requests": total_requests,
            "sustained_s": round(sustained_s, 3),
            "requests_per_s": round(requests_per_s, 1),
        },
        "speedups": {"warm_vs_cold": round(warm_speedup, 1)},
        "required": {"warm_vs_cold": REQUIRED_WARM_SPEEDUP},
        "determinism": {
            "byte_identical": identical,
            "digests": daemon_digests,
        },
        "failures": failures,
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _summarize(payload: dict) -> str:
    latency = payload["latency_s"]
    throughput = payload["throughput"]
    lines = [
        "daemon serve ({}; runs={}, jobs={})".format(
            ",".join(payload["scenario"]["subjects"]),
            payload["scenario"]["random_runs"],
            payload["scenario"]["jobs"],
        ),
        f"  cold request    {latency['cold']:8.3f}s",
        "  warm median     {:8.3f}s  ({}x vs cold)".format(
            latency["warm_median"], payload["speedups"]["warm_vs_cold"]
        ),
        "  sustained       {:8.1f} req/s  ({} requests, {} clients)".format(
            throughput["requests_per_s"],
            throughput["sustained_requests"],
            payload["scenario"]["clients"],
        ),
        "  digest identity vs direct run: {}".format(
            payload["determinism"]["byte_identical"]
        ),
    ]
    for failure in payload["failures"]:
        lines.append(f"  GATE FAILED: {failure}")
    return "\n".join(lines)


def test_daemon_serve_smoke(tmp_path):
    """Reduced-repeats smoke: identity + warm-latency gates must hold."""
    payload = run_bench(
        repeats=4,
        clients=2,
        out_path=tmp_path / "BENCH_daemon_smoke.json",
    )
    try:
        from conftest import report_table

        report_table("daemon_serve_smoke", _summarize(payload))
    except ImportError:  # standalone collection
        pass
    assert payload["determinism"]["byte_identical"]
    assert payload["speedups"]["warm_vs_cold"] >= REQUIRED_WARM_SPEEDUP
    assert not payload["failures"], payload["failures"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--subjects", help="comma-separated subject keys")
    parser.add_argument("--runs", type=int, default=DEFAULT_RUNS)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS)
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args(argv)
    keys = args.subjects.split(",") if args.subjects else None
    payload = run_bench(
        subject_keys=keys,
        runs=args.runs,
        repeats=args.repeats,
        clients=args.clients,
        jobs=args.jobs,
        out_path=args.out,
    )
    print(_summarize(payload))
    print(f"wrote {args.out}")
    return 1 if payload["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
