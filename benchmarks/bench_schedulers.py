"""Scheduler strategies on synthesized tests: random vs PCT vs Chess.

The paper positions its synthesized tests as input to *any* systematic
or randomized concurrency-testing backend (§6 cites RaceFuzzer, Chess,
PCT, Maple).  This benchmark runs three of those backends over the same
synthesized C1 tests and compares schedules-to-first-race:

* uniform random scheduling,
* PCT (depth 2 — the race depth — with one priority change point),
* Chess-style bounded exhaustive search (preemption bound 2), which is
  complete and returns a replayable certificate.
"""

from conftest import report_table

from _pipeline_cache import synthesis_for
from repro.detect import FastTrackDetector
from repro.fuzz import BoundedExplorer
from repro.runtime import PCTScheduler, RandomScheduler
from repro.synth import TestRunner

MAX_ATTEMPTS = 30


def attempts_to_first_race(narada, test, make_scheduler):
    for attempt in range(MAX_ATTEMPTS):
        detector = FastTrackDetector()
        runner = TestRunner(narada.table, listeners=(detector,))
        runner.run(test, make_scheduler(attempt))
        if detector.races:
            return attempt + 1
    return None


def test_scheduler_comparison(benchmark):
    subject, narada, report = synthesis_for("C1")
    tests = [t for t in report.tests if t.plan.full_context][:8]
    assert tests

    def measure():
        rows = []
        for test in tests:
            random_hits = attempts_to_first_race(
                narada, test, lambda seed: RandomScheduler(seed)
            )
            pct_hits = attempts_to_first_race(
                narada,
                test,
                lambda seed: PCTScheduler(seed=seed, expected_steps=120),
            )
            chess = BoundedExplorer(
                narada.table, preemption_bound=2, max_schedules=400
            ).explore(test)
            rows.append((test.name, random_hits, pct_hits, chess))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    racy_rows = [r for r in rows if r[3].race_count > 0]
    assert racy_rows, "expected racy tests among the full-context ones"
    for name, random_hits, pct_hits, chess in racy_rows:
        # Completeness: whenever Chess proves a race exists within the
        # bound, the randomized strategies should find it in few tries.
        assert random_hits is not None or pct_hits is not None, name
        # Every Chess race carries a certificate.
        for key in chess.races.static_keys():
            assert chess.first_schedule_for(key) is not None

    lines = [
        "Schedulers on synthesized C1 tests: attempts to first race",
        f"{'test':<36}{'random':>8}{'PCT':>6}{'chess schedules':>17}"
        f"{'races':>7}",
        "-" * 76,
    ]
    for name, random_hits, pct_hits, chess in rows:
        lines.append(
            f"{name:<36}{str(random_hits or '-'):>8}{str(pct_hits or '-'):>6}"
            f"{chess.schedules_run:>17}{chess.race_count:>7}"
        )
    report_table("schedulers", "\n".join(lines))
