"""Table 3: benchmark information.

Verifies the nine subjects load and renders the inventory table.  The
benchmarked operation is the full load (lex + parse + class table +
resolve) of all nine subject programs.
"""

from conftest import report_table

from repro.report import format_table3
from repro.subjects import all_subjects


def load_all():
    return [subject.load() for subject in all_subjects()]


def test_table3_inventory(benchmark):
    tables = benchmark(load_all)
    subjects = all_subjects()
    assert len(tables) == 9

    # Shape assertions against the paper's Table 3.
    by_key = {s.key: s for s in subjects}
    assert by_key["C1"].benchmark == "hazelcast"
    assert by_key["C2"].benchmark == by_key["C3"].benchmark == "openjdk"
    assert by_key["C5"].benchmark == by_key["C6"].benchmark == "hsqldb"
    for subject, table in zip(subjects, tables):
        assert table.program.class_decl(subject.class_name) is not None
        assert table.program.tests, subject.key

    report_table("table3_inventory", format_table3(subjects))
