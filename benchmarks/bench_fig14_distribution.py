"""Figure 14: distribution of tests w.r.t. the number of detected races.

Buckets every synthesized test of every class by how many races its
fuzzing exposed (0, 1, 2, 3-5, 5-10, >10) and renders the distribution.

Shape claims checked against the paper's figure:

* C7/C8/C9: every synthesized test detects at least one race,
* C4: a majority of tests expose no race at all (context for the
  internal buffer can never be set; prefix-shared receivers serialize),
* C1/C2 have both productive and zero-race tests.
"""

from conftest import report_table

from _pipeline_cache import all_keys, detection_for, synthesis_for
from repro.report import figure14_distribution, format_figure14


def _rows():
    rows = []
    for key in all_keys():
        subject, _, _ = synthesis_for(key)
        rows.append((subject, detection_for(key)))
    return rows


def test_fig14_distribution(benchmark):
    rows = _rows()
    dist = benchmark.pedantic(lambda: figure14_distribution(rows), rounds=5,
                              iterations=1)
    by_key = {row.class_key: row.percentages for row in dist}

    # C7..C9: essentially every test detects at least one race (paper:
    # "for C5, C6..C8, each test detects at least one race"; our larger
    # per-class test sets admit the occasional read-only pairing, so we
    # assert a 15% ceiling on the zero bucket instead of exactly zero).
    for key in ("C7", "C8", "C9"):
        assert by_key[key]["0"] <= 20.0, (key, by_key[key])

    # C4: majority of tests detect nothing.
    assert by_key["C4"]["0"] > 50.0

    # Percentages sum to ~100 for every class.
    for key, percentages in by_key.items():
        assert abs(sum(percentages.values()) - 100.0) < 1e-6, key

    report_table("fig14_distribution", format_figure14(rows))
