"""Extension benchmark: deadlock-test synthesis on the subjects.

Not a paper table (the racy-test paper defers deadlocks to its OOPSLA'14
sibling, which we also implement).  This benchmark sweeps the C1–C9
subjects plus the classic bank example through the deadlock pipeline and
checks the expected split:

* C3 and C4 contain genuine cross-receiver deadlock hazards their real
  counterparts also have (CharArrayWriter.writeTo(other) mirrors the
  JDK's cross-append deadlocks; colt documents DynamicBin1D.addAllOf as
  deadlock-prone) — the pipeline synthesizes the crossed tests and the
  fuzzer *manifests* both,
* the remaining subjects have flat locking: no spurious deadlock tests,
* the classic bank-transfer example confirms as well.
"""

from conftest import report_table

from repro.deadlock import DeadlockPipeline
from repro.subjects import all_subjects

BANK = """
class Account {
  int balance;
  Account other;
  Account(int start) { this.balance = start; }
  void setPartner(Account partner) { this.other = partner; }
  synchronized void transferOut(int amount) {
    this.balance = this.balance - amount;
    this.other.deposit(amount);
  }
  synchronized void deposit(int amount) { this.balance = this.balance + amount; }
}
test Seed {
  Account a = new Account(100);
  Account b = new Account(100);
  a.setPartner(b);
  b.setPartner(a);
  a.transferOut(10);
  b.deposit(5);
}
"""


def test_deadlock_extension(benchmark):
    def measure():
        rows = []
        for subject in all_subjects():
            pipeline = DeadlockPipeline(subject.load())
            report = pipeline.synthesize(target_class=subject.class_name)
            confirms = pipeline.confirm(report, random_runs=6)
            rows.append(
                (
                    subject.key,
                    len(report.pairs),
                    len(report.tests),
                    sum(1 for c in confirms if c.confirmed),
                )
            )
        bank = DeadlockPipeline(BANK)
        bank_report = bank.synthesize()
        confirms = bank.confirm(bank_report, random_runs=6)
        rows.append(
            (
                "bank",
                len(bank_report.pairs),
                len(bank_report.tests),
                sum(1 for c in confirms if c.confirmed),
            )
        )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    by_key = {key: (pairs, tests, confirmed) for key, pairs, tests, confirmed in rows}
    # The genuine nested-locking hazards manifest...
    for key in ("C3", "C4", "bank"):
        pairs, tests, confirmed = by_key[key]
        assert tests >= 1, key
        assert confirmed >= 1, key
    # ...and the flat-locking subjects synthesize nothing spurious.
    for key in ("C1", "C2", "C5", "C6", "C7", "C8", "C9"):
        assert by_key[key][1] == 0, (key, by_key[key])

    report_table(
        "deadlock_extension",
        "\n".join(
            [
                "Extension: deadlock-test synthesis (OOPSLA'14 sibling)",
                f"{'subject':<9}{'lock pairs':>11}{'tests':>7}{'confirmed':>11}",
                "-" * 40,
                *[
                    f"{key:<9}{pairs:>11}{tests:>7}"
                    f"{str(confirmed if confirmed is not None else '-'):>11}"
                    for key, pairs, tests, confirmed in rows
                ],
            ]
        ),
    )
