"""Table 5: analysis of the synthesized tests by the detector backend.

Runs the RaceFuzzer analogue (random schedules + directed confirmation,
FastTrack + Eraser attached) over every synthesized test of every class
and renders the Table-5 comparison.

Shape claims checked against the paper:

* harmful races are found in **every** class (the paper's headline),
* most detected races are reproduced (paper: 259 of 307),
* C6's reproduced races are dominated by benign constant-reset races
  (paper: 62 benign vs 15 harmful),
* C1/C2 (the wrapper bugs) yield large harmful counts,
* C4 detects far fewer races than it has pairs (uncontrollable context).
"""

import pytest
from conftest import report_table

from _pipeline_cache import all_keys, detection_for, synthesis_for
from repro.report import format_table5


@pytest.mark.parametrize("key", all_keys())
def test_detection_per_class(benchmark, key):
    subject, narada, report = synthesis_for(key)

    # Benchmark detection on a bounded slice so per-class timings are
    # comparable; the full detection result comes from the cache.
    sample = report.tests[:3]

    def run_detection():
        from repro.fuzz import RaceFuzzer

        fuzzer = RaceFuzzer(narada.table, random_runs=3)
        return [fuzzer.fuzz(test) for test in sample]

    reports = benchmark.pedantic(run_detection, rounds=1, iterations=1)
    assert len(reports) == len(sample)

    detection = detection_for(key)
    assert detection.detected >= 1, key
    assert detection.harmful >= 1, key
    assert detection.reproduced <= detection.detected


def test_table5_render(benchmark):
    rows = []
    for key in all_keys():
        subject, _, _ = synthesis_for(key)
        rows.append((subject, detection_for(key)))
    benchmark.pedantic(lambda: format_table5(rows), rounds=5, iterations=1)

    by_key = {subject.key: det for subject, det in rows}

    # Most detected races are reproduced overall (paper: 259/307).
    total_detected = sum(d.detected for d in by_key.values())
    total_reproduced = sum(d.reproduced for d in by_key.values())
    assert total_reproduced >= total_detected * 0.5

    # C6: the constant-reset pattern makes it the benign-race champion
    # (the paper's 62-of-72 benign cluster lives here; our broader test
    # set adds many non-reset races, so benign does not dominate the
    # class total, but it still concentrates in C6 — see EXPERIMENTS.md).
    assert by_key["C6"].benign >= 10
    assert by_key["C6"].benign == max(d.benign for d in by_key.values())

    # The wrapper subjects carry large harmful counts.
    assert by_key["C1"].harmful >= 10
    assert by_key["C2"].harmful >= 10

    # C4: far fewer races than racing pairs (uncontrollable context).
    _, _, c4_synthesis = synthesis_for("C4")
    assert by_key["C4"].detected < c4_synthesis.pair_count / 2

    report_table("table5_detection", format_table5(rows))


def test_results_json_export(benchmark):
    """Write the full evaluation as benchmarks/out/results.json."""
    import pathlib

    from repro.report import evaluation_dict, write_evaluation_json

    rows = []
    for key in all_keys():
        subject, _, synthesis = synthesis_for(key)
        rows.append((subject, synthesis, detection_for(key)))
    data = benchmark.pedantic(
        lambda: evaluation_dict(rows), rounds=3, iterations=1
    )
    assert len(data["subjects"]) == 9
    assert data["totals"]["harmful"] > 0
    out = pathlib.Path(__file__).parent / "out" / "results.json"
    out.parent.mkdir(exist_ok=True)
    write_evaluation_json(str(out), data)
