"""Unit coverage for the value model and the error hierarchy."""

import pytest

from repro._util.errors import (
    DeadlockError,
    LexError,
    MiniJRuntimeError,
    ParseError,
    ReproError,
    SourceError,
    SynthesisError,
    TypeError_,
)
from repro.runtime.values import (
    ObjRef,
    default_value,
    is_null,
    is_ref,
    show_value,
    values_equal,
)


class TestValues:
    def test_obj_ref_identity_semantics(self):
        a = ObjRef(1, "A")
        same = ObjRef(1, "A")
        other = ObjRef(2, "A")
        assert values_equal(a, same)
        assert not values_equal(a, other)
        assert not values_equal(a, None)
        assert not values_equal(None, a)

    def test_null_equality(self):
        assert values_equal(None, None)
        assert not values_equal(None, 0)
        assert not values_equal(False, None)

    def test_primitive_equality(self):
        assert values_equal(3, 3)
        assert not values_equal(3, 4)
        assert values_equal(True, True)

    def test_is_ref_and_is_null(self):
        assert is_ref(ObjRef(5, "X"))
        assert not is_ref(None)
        assert not is_ref(7)
        assert is_null(None)
        assert not is_null(0)

    def test_default_values(self):
        assert default_value("int") == 0
        assert default_value("bool") is False
        assert default_value("class") is None

    def test_show_value(self):
        assert show_value(None) == "null"
        assert show_value(True) == "true"
        assert show_value(False) == "false"
        assert show_value(42) == "42"
        assert show_value(ObjRef(3, "Counter")) == "Counter#3"


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc_type in (
            LexError,
            ParseError,
            TypeError_,
            MiniJRuntimeError,
            DeadlockError,
            SynthesisError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_source_errors_carry_positions(self):
        error = ParseError("boom", line=4, column=7)
        assert error.line == 4
        assert error.column == 7
        assert "4:7" in str(error)

    def test_source_error_without_position(self):
        error = SourceError("plain")
        assert str(error) == "plain"

    def test_runtime_error_kind_and_thread(self):
        error = MiniJRuntimeError("null-dereference", "x.f", thread_id=3)
        assert error.kind == "null-dereference"
        assert error.thread_id == 3
        assert "null-dereference" in str(error)

    def test_deadlock_error_lists_threads(self):
        error = DeadlockError({1: 10, 2: 11})
        assert error.blocked == {1: 10, 2: 11}
        assert "thread 1" in str(error)
        assert "thread 2" in str(error)

    def test_catching_base_class(self):
        with pytest.raises(ReproError):
            raise SynthesisError("nope")
