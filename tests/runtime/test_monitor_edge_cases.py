"""Monitor bookkeeping edge cases: early returns, nesting, faults."""

from repro.lang import load
from repro.runtime import Execution, RoundRobinScheduler, VM
from repro.trace import LockEvent, Recorder, UnlockEvent


def balanced(trace):
    depth: dict[int, int] = {}
    for event in trace:
        if isinstance(event, LockEvent):
            depth[event.obj] = depth.get(event.obj, 0) + 1
        elif isinstance(event, UnlockEvent):
            depth[event.obj] = depth.get(event.obj, 0) - 1
    return all(v == 0 for v in depth.values())


def run(source, test="T"):
    table = load(source)
    vm = VM(table)
    recorder = Recorder(test)
    result, env = vm.run_test(test, listeners=(recorder,))
    return vm, result, env, recorder.trace


class TestEarlyReturns:
    def test_return_inside_sync_block_releases(self):
        source = """
        class A {
          int x;
          int m() {
            synchronized (this) {
              this.x = 1;
              return this.x;
            }
          }
        }
        test T { A a = new A(); int r = a.m(); int r2 = a.m(); }
        """
        vm, result, env, trace = run(source)
        assert result.clean
        assert env["r"] == 1 and env["r2"] == 1
        assert balanced(trace)
        assert vm.heap.get(env["a"].ref).monitor.owner is None

    def test_return_from_nested_sync_blocks_releases_all(self):
        source = """
        class B { }
        class A {
          B gate;
          A() { this.gate = new B(); }
          int m() {
            synchronized (this) {
              synchronized (this.gate) {
                return 7;
              }
            }
          }
        }
        test T { A a = new A(); int r = a.m(); }
        """
        vm, result, env, trace = run(source)
        assert result.clean
        assert balanced(trace)

    def test_return_inside_loop_inside_sync(self):
        source = """
        class A {
          int m(int n) {
            synchronized (this) {
              int i = 0;
              while (true) {
                if (i == n) { return i; }
                i = i + 1;
              }
            }
          }
        }
        test T { A a = new A(); int r = a.m(5); }
        """
        _, result, env, trace = run(source)
        assert result.clean
        assert env["r"] == 5
        assert balanced(trace)

    def test_synchronized_method_early_return_releases(self):
        source = """
        class A {
          int x;
          synchronized int m(bool quick) {
            if (quick) { return 0; }
            this.x = 9;
            return this.x;
          }
        }
        test T { A a = new A(); int r1 = a.m(true); int r2 = a.m(false); }
        """
        vm, result, env, trace = run(source)
        assert result.clean
        assert (env["r1"], env["r2"]) == (0, 9)
        assert balanced(trace)


class TestReentrancyDepth:
    def test_triple_reentrant_acquire(self):
        source = """
        class A {
          int hits;
          synchronized void outer() { this.middle(); }
          synchronized void middle() { this.inner(); }
          synchronized void inner() { this.hits = this.hits + 1; }
        }
        test T { A a = new A(); a.outer(); }
        """
        vm, result, env, trace = run(source)
        assert result.clean
        locks = [e for e in trace if isinstance(e, LockEvent)]
        assert [e.reentrancy for e in locks] == [1, 2, 3]
        unlocks = [e for e in trace if isinstance(e, UnlockEvent)]
        assert [e.reentrancy for e in unlocks] == [2, 1, 0]

    def test_contention_only_blocks_at_depth_zero(self):
        # A reentrant holder never blocks on itself.
        source = """
        class A {
          int x;
          synchronized void m() { synchronized (this) { this.x = 1; } }
        }
        test Seed { A a = new A(); }
        """
        table = load(source)
        vm = VM(table)
        _, env = vm.run_test("Seed")
        a = env["a"]
        execution = Execution(vm)
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, a, "m", []))
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, a, "m", []))
        result = execution.run(RoundRobinScheduler())
        assert result.completed


class TestFaultsUnderLocks:
    def test_fault_in_nested_sync_releases_everything(self):
        source = """
        class B { }
        class A {
          B gate;
          int x;
          A() { this.gate = new B(); }
          void boom() {
            synchronized (this) {
              synchronized (this.gate) {
                this.x = 1 / 0;
              }
            }
          }
          synchronized void ok() { this.x = 5; }
        }
        test Seed { A a = new A(); }
        """
        table = load(source)
        vm = VM(table)
        _, env = vm.run_test("Seed")
        a = env["a"]
        execution = Execution(vm)
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, a, "boom", []))
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, a, "ok", []))
        result = execution.run(RoundRobinScheduler())
        assert not result.deadlocked
        assert len(result.faults) == 1
        assert vm.heap.get(a.ref).fields["x"] == 5
        assert vm.heap.get(a.ref).monitor.owner is None
        gate_ref = vm.heap.get(a.ref).fields["gate"]
        assert vm.heap.get(gate_ref.ref).monitor.owner is None
