"""Unit tests for the interpreter: sequential semantics."""

import pytest

from repro._util.errors import MiniJRuntimeError
from repro.lang import load
from repro.runtime import VM
from repro.trace import ReadEvent, Recorder, WriteEvent


def run(source, test="T", seed=0):
    table = load(source)
    vm = VM(table, seed=seed)
    recorder = Recorder(test)
    result, env = vm.run_test(test, listeners=(recorder,))
    return vm, result, env, recorder.trace


def field_of(vm, ref, name):
    return vm.heap.get(ref.ref).fields[name]


class TestArithmetic:
    def test_basic_arithmetic(self):
        src = "class A { int m() { return 2 + 3 * 4 - 1; } } \
               test T { A a = new A(); int r = a.m(); }"
        _, result, env, _ = run(src)
        assert result.clean
        assert env["r"] == 13

    def test_division_truncates_toward_zero(self):
        src = "class A { int m(int x, int y) { return x / y; } } \
               test T { A a = new A(); int p = a.m(7, 2); int q = a.m(0 - 7, 2); }"
        _, result, env, _ = run(src)
        assert env["p"] == 3
        assert env["q"] == -3  # Java semantics, not Python floor division

    def test_modulo_sign_follows_dividend(self):
        src = "class A { int m(int x, int y) { return x % y; } } \
               test T { A a = new A(); int p = a.m(0 - 7, 2); }"
        _, _, env, _ = run(src)
        assert env["p"] == -1

    def test_division_by_zero_faults(self):
        src = "class A { int m() { return 1 / 0; } } test T { A a = new A(); a.m(); }"
        _, result, _, _ = run(src)
        assert not result.clean
        assert result.faults[0][1].kind == "division-by-zero"

    def test_comparisons_and_logic(self):
        src = (
            "class A { bool m(int x) { return x > 0 && x < 10 || x == 100; } }"
            "test T { A a = new A(); bool p = a.m(5); bool q = a.m(100);"
            " bool r = a.m(50); }"
        )
        _, _, env, _ = run(src)
        assert env["p"] is True
        assert env["q"] is True
        assert env["r"] is False

    def test_short_circuit_avoids_fault(self):
        src = (
            "class A { bool m(int x) { return x != 0 && 10 / x > 1; } }"
            "test T { A a = new A(); bool p = a.m(0); }"
        )
        _, result, env, _ = run(src)
        assert result.clean
        assert env["p"] is False


class TestObjects:
    def test_field_defaults(self):
        src = "class A { int x; bool b; A next; } test T { A a = new A(); }"
        vm, _, env, _ = run(src)
        obj = vm.heap.get(env["a"].ref)
        assert obj.fields == {"x": 0, "b": False, "next": None}

    def test_field_initializers_run_at_alloc(self):
        src = "class A { int x = 41; } test T { A a = new A(); }"
        vm, _, env, _ = run(src)
        assert field_of(vm, env["a"], "x") == 41

    def test_constructor_runs_after_initializers(self):
        src = (
            "class A { int x = 1; A() { this.x = this.x + 1; } }"
            "test T { A a = new A(); }"
        )
        vm, _, env, _ = run(src)
        assert field_of(vm, env["a"], "x") == 2

    def test_constructor_params(self):
        src = (
            "class A { int x; A(int v) { this.x = v; } }"
            "test T { A a = new A(9); }"
        )
        vm, _, env, _ = run(src)
        assert field_of(vm, env["a"], "x") == 9

    def test_reference_identity_equality(self):
        src = (
            "class A { }"
            "test T { A a = new A(); A b = new A(); A c = a;"
            " bool same = a == c; bool diff = a == b; }"
        )
        _, _, env, _ = run(src)
        assert env["same"] is True
        assert env["diff"] is False

    def test_null_dereference_faults(self):
        src = "class A { A next; int m() { return this.next.m(); } } \
               test T { A a = new A(); a.m(); }"
        _, result, _, _ = run(src)
        assert result.faults[0][1].kind == "null-dereference"

    def test_dynamic_dispatch_through_interface(self):
        src = (
            "interface Q { int tag(); }"
            "class A implements Q { int tag() { return 1; } }"
            "class B implements Q { int tag() { return 2; } }"
            "class User { int use(Q q) { return q.tag(); } }"
            "test T { User u = new User(); int p = u.use(new A());"
            " int q = u.use(new B()); }"
        )
        _, _, env, _ = run(src)
        assert env["p"] == 1
        assert env["q"] == 2

    def test_recursion_depth_bounded(self):
        src = "class A { int m(int n) { return this.m(n + 1); } } \
               test T { A a = new A(); a.m(0); }"
        _, result, _, _ = run(src)
        assert result.faults[0][1].kind == "stack-overflow"


class TestControlFlow:
    def test_while_loop(self):
        src = (
            "class A { int sum(int n) { int s = 0; int i = 1;"
            " while (i <= n) { s = s + i; i = i + 1; } return s; } }"
            "test T { A a = new A(); int r = a.sum(10); }"
        )
        _, _, env, _ = run(src)
        assert env["r"] == 55

    def test_return_exits_loop_and_method(self):
        src = (
            "class A { int find(int n) { int i = 0;"
            " while (true) { if (i == n) { return i; } i = i + 1; } } }"
            "test T { A a = new A(); int r = a.find(4); }"
        )
        _, _, env, _ = run(src)
        assert env["r"] == 4

    def test_assert_pass_and_fail(self):
        ok = "class A { void m() { assert 1 < 2; } } test T { A a = new A(); a.m(); }"
        _, result, _, _ = run(ok)
        assert result.clean

        bad = "class A { void m() { assert 2 < 1; } } test T { A a = new A(); a.m(); }"
        _, result, _, _ = run(bad)
        assert result.faults[0][1].kind == "assertion-failed"


class TestArrays:
    def test_int_array_get_set(self):
        src = (
            "class A { IntArray buf; A() { this.buf = new IntArray(4); }"
            " void put(int i, int v) { this.buf.set(i, v); }"
            " int at(int i) { return this.buf.get(i); } }"
            "test T { A a = new A(); a.put(2, 99); int r = a.at(2); int n = a.buf.length; }"
        )
        _, result, env, _ = run(src)
        assert result.clean
        assert env["r"] == 99

    def test_ref_array_holds_objects(self):
        src = (
            "class Item { }"
            "class A { RefArray buf; A() { this.buf = new RefArray(2); } }"
            "test T { A a = new A(); Item i = new Item();"
            " a.buf.set(0, i); Object got = a.buf.get(0); bool same = got == i; }"
        )
        _, _, env, _ = run(src)
        assert env["same"] is True

    def test_out_of_bounds_faults(self):
        src = (
            "class A { IntArray buf; A() { this.buf = new IntArray(2); } }"
            "test T { A a = new A(); a.buf.get(5); }"
        )
        _, result, _, _ = run(src)
        assert result.faults[0][1].kind == "index-out-of-bounds"

    def test_negative_size_faults(self):
        src = "test T { IntArray a = new IntArray(0 - 3); }"
        _, result, _, _ = run(src)
        assert result.faults[0][1].kind == "negative-array-size"

    def test_array_events_carry_elem_index(self):
        src = (
            "class A { IntArray buf; A() { this.buf = new IntArray(4); }"
            " void put() { this.buf.set(3, 7); int x = this.buf.get(3); } }"
            "test T { A a = new A(); a.put(); }"
        )
        _, _, _, trace = run(src)
        writes = [e for e in trace if isinstance(e, WriteEvent) and e.field_name == "elem"]
        reads = [e for e in trace if isinstance(e, ReadEvent) and e.field_name == "elem"]
        assert writes[0].elem_index == 3
        assert reads[0].elem_index == 3
        assert writes[0].address() == reads[0].address()


class TestRand:
    def test_rand_int_deterministic_per_seed(self):
        src = "class A { int m() { return rand(); } } \
               test T { A a = new A(); int r = a.m(); }"
        _, _, env1, _ = run(src, seed=7)
        _, _, env2, _ = run(src, seed=7)
        assert env1["r"] == env2["r"]

    def test_rand_object_is_library_allocated(self):
        src = (
            "class X { }"
            "class A { X o; void m() { this.o = rand(); } }"
            "test T { A a = new A(); a.m(); }"
        )
        vm, _, env, _ = run(src)
        obj_ref = field_of(vm, env["a"], "o")
        assert vm.heap.get(obj_ref.ref).lib_allocated


class TestTraceShape:
    def test_trace_labels_strictly_increasing(self):
        src = (
            "class A { int x; synchronized void m() { this.x = this.x + 1; } }"
            "test T { A a = new A(); a.m(); a.m(); }"
        )
        _, _, _, trace = run(src)
        labels = [e.label for e in trace]
        assert labels == sorted(labels)
        assert len(set(labels)) == len(labels)

    def test_locks_held_snapshot(self):
        src = (
            "class A { int x; synchronized void m() { this.x = 5; } "
            " void n() { this.x = 6; } }"
            "test T { A a = new A(); a.m(); a.n(); }"
        )
        _, _, env, trace = run(src)
        writes = [e for e in trace if isinstance(e, WriteEvent)]
        locked, unlocked = writes[0], writes[1]
        assert env["a"].ref in locked.locks_held
        assert not unlocked.locks_held

    def test_constructor_accesses_flagged(self):
        src = (
            "class A { int x; A() { this.x = 1; } void m() { this.x = 2; } }"
            "test T { A a = new A(); a.m(); }"
        )
        _, _, _, trace = run(src)
        writes = [e for e in trace if isinstance(e, WriteEvent)]
        assert writes[0].in_constructor
        assert not writes[1].in_constructor
