"""Property-based tests for VM invariants.

These check the properties everything downstream relies on:

* monitor mutual exclusion holds under every schedule,
* executions are deterministic functions of (program, VM seed, schedule),
* schedules cannot change the outcome of thread-local computation,
* MiniJ integer division/modulo match Java semantics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import load
from repro.runtime import Execution, RandomScheduler, VM
from repro.trace.events import LockEvent, UnlockEvent

WORKLOAD_SOURCE = """
class Shared {
  int a;
  int b;
  void plain() { this.a = this.a + 1; }
  synchronized void locked() { this.b = this.b + 1; }
  synchronized void nested() {
    synchronized (this) { this.b = this.b + 2; }
  }
  int look() { return this.a + this.b; }
}
test Seed { Shared s = new Shared(); }
"""

_workload_table = load(WORKLOAD_SOURCE)
METHODS = ["plain", "locked", "nested", "look"]


class MutualExclusionChecker:
    """Listener asserting at most one owner per monitor at all times."""

    def __init__(self):
        self.owners: dict[int, int] = {}
        self.depths: dict[int, int] = {}
        self.violations: list[str] = []

    def on_event(self, event):
        if isinstance(event, LockEvent):
            owner = self.owners.get(event.obj)
            if owner is not None and owner != event.thread_id:
                self.violations.append(
                    f"t{event.thread_id} locked #{event.obj} owned by t{owner}"
                )
            self.owners[event.obj] = event.thread_id
            self.depths[event.obj] = self.depths.get(event.obj, 0) + 1
            if self.depths[event.obj] != event.reentrancy:
                self.violations.append(
                    f"reentrancy mismatch on #{event.obj}"
                )
        elif isinstance(event, UnlockEvent):
            if self.owners.get(event.obj) != event.thread_id:
                self.violations.append(
                    f"t{event.thread_id} unlocked #{event.obj} it did not own"
                )
            self.depths[event.obj] -= 1
            if self.depths[event.obj] == 0:
                del self.owners[event.obj]
                del self.depths[event.obj]


def run_workload(thread_methods, seed, listeners=()):
    vm = VM(_workload_table)
    _, env = vm.run_test("Seed")
    shared = env["s"]
    execution = Execution(vm, listeners=tuple(listeners))
    for methods in thread_methods:
        def body(ctx, methods=methods):
            for method in methods:
                yield from vm.interp.call_method(ctx, shared, method, [])

        execution.spawn(body)
    result = execution.run(RandomScheduler(seed))
    obj = vm.heap.get(shared.ref)
    return result, (obj.fields["a"], obj.fields["b"])


workloads = st.lists(
    st.lists(st.sampled_from(METHODS), min_size=1, max_size=4),
    min_size=2,
    max_size=3,
)


class TestMonitorInvariants:
    @given(workloads, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_mutual_exclusion_under_any_schedule(self, threads, seed):
        checker = MutualExclusionChecker()
        result, _ = run_workload(threads, seed, listeners=[checker])
        assert result.completed
        assert not checker.violations

    @given(workloads, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_locked_counter_never_loses_updates(self, threads, seed):
        _, (_, b) = run_workload(threads, seed)
        expected = sum(
            (1 if m == "locked" else 2 if m == "nested" else 0)
            for methods in threads
            for m in methods
        )
        assert b == expected


class TestDeterminism:
    @given(workloads, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_identical_runs_identical_outcomes(self, threads, seed):
        assert run_workload(threads, seed)[1] == run_workload(threads, seed)[1]

    @given(
        st.lists(st.sampled_from(METHODS), min_size=1, max_size=4),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_single_thread_schedule_independent(self, methods, seed1, seed2):
        # With one thread, the scheduler has no freedom: outcomes match.
        assert (
            run_workload([methods], seed1)[1]
            == run_workload([methods], seed2)[1]
        )


class TestJavaArithmetic:
    DIV_SOURCE = """
    class M {
      int div(int x, int y) { return x / y; }
      int mod(int x, int y) { return x % y; }
    }
    test Seed { M m = new M(); }
    """
    _table = load(DIV_SOURCE)

    @staticmethod
    def _java_div(x, y):
        q = abs(x) // abs(y)
        return -q if (x < 0) != (y < 0) else q

    @given(
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=-1000, max_value=1000).filter(lambda y: y != 0),
    )
    @settings(max_examples=120, deadline=None)
    def test_division_matches_java(self, x, y):
        vm = VM(self._table)
        _, env = vm.run_test("Seed")
        m = env["m"]
        execution = Execution(vm)
        tid = execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, m, "div", [x, y])
        )
        execution.run(RandomScheduler(0))
        assert execution.thread(tid).result == self._java_div(x, y)

    @given(
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=-1000, max_value=1000).filter(lambda y: y != 0),
    )
    @settings(max_examples=120, deadline=None)
    def test_modulo_identity(self, x, y):
        # Java guarantees (x / y) * y + (x % y) == x.
        vm = VM(self._table)
        _, env = vm.run_test("Seed")
        m = env["m"]
        execution = Execution(vm)
        div_tid = execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, m, "div", [x, y])
        )
        mod_tid = execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, m, "mod", [x, y])
        )
        execution.run(RandomScheduler(0))
        quotient = execution.thread(div_tid).result
        remainder = execution.thread(mod_tid).result
        assert quotient * y + remainder == x
        assert abs(remainder) < abs(y)
