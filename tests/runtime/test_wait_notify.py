"""Condition synchronization: wait / notify / notifyAll semantics."""

import pytest

from repro.lang import load
from repro.runtime import Execution, RandomScheduler, RoundRobinScheduler, VM
from repro.trace import Recorder
from repro.trace.events import LockEvent, NotifyEvent, UnlockEvent, WaitEvent

BOUNDED_QUEUE = """
class BoundedQueue {
  IntArray items;
  int count;
  int capacity;
  BoundedQueue(int capacity) {
    this.items = new IntArray(capacity);
    this.capacity = capacity;
    this.count = 0;
  }
  synchronized void put(int v) {
    while (this.count == this.capacity) { this.wait(); }
    this.items.set(this.count, v);
    this.count = this.count + 1;
    this.notifyAll();
  }
  synchronized int take() {
    while (this.count == 0) { this.wait(); }
    this.count = this.count - 1;
    int v = this.items.get(this.count);
    this.notifyAll();
    return v;
  }
  synchronized int size() { return this.count; }
}
test Seed { BoundedQueue q = new BoundedQueue(2); }
"""


def make_queue():
    table = load(BOUNDED_QUEUE)
    vm = VM(table)
    _, env = vm.run_test("Seed")
    return table, vm, env["q"]


class TestProducerConsumer:
    @pytest.mark.parametrize("seed", range(8))
    def test_handoff_completes_under_random_schedules(self, seed):
        _, vm, queue = make_queue()
        execution = Execution(vm)
        taker = execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, queue, "take", [])
        )
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, queue, "put", [42]))
        result = execution.run(RandomScheduler(seed))
        assert result.completed, (result.deadlocked, result.blocked)
        assert execution.thread(taker).result == 42

    def test_consumer_first_must_wait(self):
        # Round-robin with the consumer spawned first: it reaches the
        # empty queue before the producer, so a WaitEvent must occur.
        _, vm, queue = make_queue()
        recorder = Recorder()
        execution = Execution(vm, listeners=(recorder,))
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, queue, "take", []))
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, queue, "put", [7]))
        result = execution.run(RoundRobinScheduler())
        assert result.completed
        assert any(isinstance(e, WaitEvent) for e in recorder.trace)
        assert any(isinstance(e, NotifyEvent) for e in recorder.trace)

    def test_capacity_blocks_producers(self):
        # Two puts fill capacity 2; the third put waits until a take.
        _, vm, queue = make_queue()
        execution = Execution(vm)

        def producer(ctx):
            for value in (1, 2, 3):
                yield from vm.interp.call_method(ctx, queue, "put", [value])

        execution.spawn(producer)
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, queue, "take", []))
        result = execution.run(RoundRobinScheduler())
        assert result.completed
        assert vm.heap.get(queue.ref).fields["count"] == 2

    def test_lost_wakeup_is_a_detected_deadlock(self):
        # Consumer on an empty queue with no producer: the VM reports
        # the hang instead of spinning.
        _, vm, queue = make_queue()
        execution = Execution(vm)
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, queue, "take", []))
        result = execution.run(RoundRobinScheduler(), max_steps=5_000)
        assert result.deadlocked or result.timed_out
        # The monitor itself is free while the thread waits.
        assert vm.heap.get(queue.ref).monitor.owner is None


class TestWaitSemantics:
    def test_wait_requires_monitor_ownership(self):
        source = """
        class C { void oops() { this.wait(); } }
        test Seed { C c = new C(); c.oops(); }
        """
        table = load(source)
        vm = VM(table)
        result, _ = vm.run_test("Seed")
        assert result.faults
        assert result.faults[0][1].kind == "illegal-monitor-state"

    def test_notify_requires_monitor_ownership(self):
        source = """
        class C { void oops() { this.notify(); } }
        test Seed { C c = new C(); c.oops(); }
        """
        table = load(source)
        vm = VM(table)
        result, _ = vm.run_test("Seed")
        assert result.faults
        assert result.faults[0][1].kind == "illegal-monitor-state"

    def test_wait_releases_and_reacquires_reentrantly(self):
        source = """
        class C {
          int woke;
          synchronized void outer() { this.inner(); }
          synchronized void inner() { this.wait(); this.woke = 1; }
          synchronized void wake() { this.notifyAll(); }
        }
        test Seed { C c = new C(); }
        """
        table = load(source)
        vm = VM(table)
        _, env = vm.run_test("Seed")
        c = env["c"]
        recorder = Recorder()
        execution = Execution(vm, listeners=(recorder,))
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, c, "outer", []))
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, c, "wake", []))
        result = execution.run(RoundRobinScheduler())
        assert result.completed
        assert vm.heap.get(c.ref).fields["woke"] == 1
        # wait() released from depth 2 and reacquired at depth 2.
        unlocks = [e for e in recorder.trace if isinstance(e, UnlockEvent)]
        assert any(e.reentrancy == 0 for e in unlocks)
        relocks = [e for e in recorder.trace if isinstance(e, LockEvent)]
        assert any(e.reentrancy == 2 for e in relocks)

    def test_notify_wakes_lowest_waiter_only(self):
        _, vm, queue = make_queue()
        source_table = vm.table
        # Park two consumers, then one put: exactly one value handed off,
        # the other consumer still waits.
        execution = Execution(vm)
        c1 = execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, queue, "take", [])
        )
        c2 = execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, queue, "take", [])
        )
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, queue, "put", [5]))
        result = execution.run(RoundRobinScheduler(), max_steps=5_000)
        done = [
            tid
            for tid in (c1, c2)
            if execution.thread(tid).result is not None
        ]
        assert len(done) == 1
        assert execution.thread(done[0]).result == 5
        assert result.deadlocked or result.timed_out  # the other waits


class TestHappensBeforeThroughWait:
    def test_no_false_race_across_wait_handoff(self):
        # The producer's write and the consumer's read are ordered by
        # the monitor (wait emits real unlock/lock events), so the HB
        # detectors must stay silent on items/count.
        from repro.detect import DjitDetector, FastTrackDetector

        for seed in range(6):
            _, vm, queue = make_queue()
            fasttrack = FastTrackDetector()
            djit = DjitDetector()
            execution = Execution(vm, listeners=(fasttrack, djit))
            execution.spawn(
                lambda ctx: vm.interp.call_method(ctx, queue, "take", [])
            )
            execution.spawn(
                lambda ctx: vm.interp.call_method(ctx, queue, "put", [9])
            )
            result = execution.run(RandomScheduler(seed))
            assert result.completed
            assert len(fasttrack.races) == 0, [
                r.describe() for r in fasttrack.races
            ]
            assert len(djit.races) == 0
