"""Execution lifecycle: quiescence is final, elision is unobservable.

Two guarantees of the hot-path overhaul:

* An :class:`Execution` that ran to quiescence is finished — spawning
  another thread on it would silently run with stale dispatch and
  emit-filter state, so it raises :class:`StaleExecutionError` instead.
* The event-construction elision (skipping event kinds no attached
  listener subscribes to) must never change what listeners observe:
  detectors attached alone (elision active) report exactly the races
  they report with a :class:`Recorder` attached (elision off, every
  event constructed).
"""

import pytest

from repro._util.errors import StaleExecutionError
from repro.detect import FastTrackDetector
from repro.lang import load
from repro.runtime import Execution, RandomScheduler, VM
from repro.trace import Recorder

SOURCE = """
class Cell {
  int n;
  void bump() { this.n = this.n + 1; }
  synchronized void safeBump() { this.n = this.n + 1; }
}
test Seed { Cell c = new Cell(); }
"""

_table = load(SOURCE)


def _spawn_workers(vm, execution, receiver, methods=("bump",)):
    for method in methods:
        def body(ctx, method=method):
            yield from vm.interp.call_method(ctx, receiver, method, [])

        execution.spawn(body)


class TestSpawnAfterQuiescence:
    def test_spawn_after_run_raises(self):
        vm = VM(_table)
        _, env = vm.run_test("Seed")
        execution = Execution(vm)
        _spawn_workers(vm, execution, env["c"], methods=("bump", "bump"))
        result = execution.run(RandomScheduler(0))
        assert result.completed
        with pytest.raises(StaleExecutionError):
            execution.spawn(
                lambda ctx: vm.interp.call_method(ctx, env["c"], "bump", [])
            )

    def test_error_message_names_the_problem(self):
        vm = VM(_table)
        _, env = vm.run_test("Seed")
        execution = Execution(vm)
        _spawn_workers(vm, execution, env["c"])
        execution.run(RandomScheduler(0))
        with pytest.raises(StaleExecutionError, match="quiescen"):
            execution.spawn(
                lambda ctx: vm.interp.call_method(ctx, env["c"], "bump", [])
            )

    def test_incomplete_run_still_accepts_spawns(self):
        """Only quiescence finalizes; a fresh execution accepts spawns."""
        vm = VM(_table)
        _, env = vm.run_test("Seed")
        execution = Execution(vm)
        _spawn_workers(vm, execution, env["c"])
        execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, env["c"], "safeBump", [])
        )
        result = execution.run(RandomScheduler(1))
        assert result.completed


class TestElisionSoundness:
    def _races(self, with_recorder, seed):
        vm = VM(_table)
        _, env = vm.run_test("Seed")
        detector = FastTrackDetector()
        listeners = (detector, Recorder()) if with_recorder else (detector,)
        execution = Execution(vm, listeners=listeners)
        _spawn_workers(
            vm, execution, env["c"], methods=("bump", "bump", "safeBump")
        )
        result = execution.run(RandomScheduler(seed))
        assert result.completed
        return detector.races

    @pytest.mark.parametrize("seed", [0, 3, 11, 42, 1234])
    def test_detector_alone_matches_detector_plus_recorder(self, seed):
        elided = self._races(with_recorder=False, seed=seed)
        full = self._races(with_recorder=True, seed=seed)
        assert elided.static_keys() == full.static_keys()
        assert elided.dynamic_count == full.dynamic_count
