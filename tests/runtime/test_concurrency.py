"""Concurrency semantics: monitors, blocking, deadlock, interleavings."""

import pytest

from repro._util.errors import MiniJRuntimeError
from repro.lang import load
from repro.runtime import (
    Execution,
    FixedScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    ThreadStatus,
    VM,
)
from repro.runtime.heap import Monitor
from repro.trace import BlockedEvent, LockEvent, Recorder, UnlockEvent

COUNTER = """
class Counter {
  int count;
  void inc() { int t = this.count; this.count = t + 1; }
  synchronized void safeInc() { int t = this.count; this.count = t + 1; }
}
test Seed { Counter c = new Counter(); }
"""


def make_vm(source=COUNTER):
    return VM(load(source))


def spawn_calls(vm, execution, receiver, method, count):
    for _ in range(count):
        execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, receiver, method, []),
            parent=None,
        )


class TestMonitor:
    def test_acquire_release(self):
        monitor = Monitor()
        assert monitor.can_acquire(1)
        assert monitor.acquire(1) == 1
        assert not monitor.can_acquire(2)
        assert monitor.release(1) == 0
        assert monitor.can_acquire(2)

    def test_reentrancy(self):
        monitor = Monitor()
        monitor.acquire(1)
        assert monitor.acquire(1) == 2
        assert monitor.release(1) == 1
        assert monitor.owner == 1
        monitor.release(1)
        assert monitor.owner is None

    def test_foreign_release_rejected(self):
        monitor = Monitor()
        monitor.acquire(1)
        with pytest.raises(AssertionError):
            monitor.release(2)


class TestMutualExclusion:
    def test_unsynchronized_increment_can_lose_updates(self):
        lost = False
        for seed in range(40):
            vm = make_vm()
            _, env = vm.run_test("Seed")
            c = env["c"]
            ex = Execution(vm)
            spawn_calls(vm, ex, c, "inc", 2)
            ex.run(RandomScheduler(seed))
            if vm.heap.get(c.ref).fields["count"] < 2:
                lost = True
                break
        assert lost, "expected at least one schedule to lose an update"

    def test_synchronized_increment_never_loses_updates(self):
        for seed in range(40):
            vm = make_vm()
            _, env = vm.run_test("Seed")
            c = env["c"]
            ex = Execution(vm)
            spawn_calls(vm, ex, c, "safeInc", 2)
            result = ex.run(RandomScheduler(seed))
            assert result.clean
            assert vm.heap.get(c.ref).fields["count"] == 2

    def test_blocked_thread_waits_for_release(self):
        src = """
        class Holder {
          int x;
          synchronized void slow() {
            int i = 0;
            while (i < 5) { this.x = this.x + 1; i = i + 1; }
          }
        }
        test Seed { Holder h = new Holder(); }
        """
        vm = make_vm(src)
        _, env = vm.run_test("Seed")
        h = env["h"]
        recorder = Recorder()
        ex = Execution(vm, listeners=(recorder,))
        spawn_calls(vm, ex, h, "slow", 2)
        result = ex.run(RoundRobinScheduler())
        assert result.clean
        assert vm.heap.get(h.ref).fields["x"] == 10
        # Round-robin forces contention: the second thread must block.
        assert any(isinstance(e, BlockedEvent) for e in recorder.trace)
        # Lock/unlock events balance.
        locks = sum(1 for e in recorder.trace if isinstance(e, LockEvent))
        unlocks = sum(1 for e in recorder.trace if isinstance(e, UnlockEvent))
        assert locks == unlocks == 2


class TestDeadlock:
    SRC = """
    class Pair {
      Pair other;
      synchronized void hit() { this.other.poke(); }
      synchronized void poke() { }
    }
    test Seed {
      Pair a = new Pair();
      Pair b = new Pair();
      a.other = b;
      b.other = a;
    }
    """

    def test_abba_deadlock_detected(self):
        vm = make_vm(self.SRC)
        _, env = vm.run_test("Seed")
        a, b = env["a"], env["b"]
        ex = Execution(vm)
        t1 = ex.spawn(lambda ctx: vm.interp.call_method(ctx, a, "hit", []))
        t2 = ex.spawn(lambda ctx: vm.interp.call_method(ctx, b, "hit", []))
        # Alternate threads strictly so both take their first lock before
        # either attempts the second.
        result = ex.run(FixedScheduler([t1, t2] * 50))
        assert result.deadlocked
        assert set(result.blocked) == {t1, t2}

    def test_deadlock_avoided_when_serialized(self):
        vm = make_vm(self.SRC)
        _, env = vm.run_test("Seed")
        a, b = env["a"], env["b"]
        ex = Execution(vm)
        t1 = ex.spawn(lambda ctx: vm.interp.call_method(ctx, a, "hit", []))
        t2 = ex.spawn(lambda ctx: vm.interp.call_method(ctx, b, "hit", []))
        result = ex.run(FixedScheduler([t1] * 100 + [t2] * 100))
        assert result.completed and not result.deadlocked


class TestFaultIsolation:
    def test_fault_releases_monitors(self):
        src = """
        class Boom {
          int x;
          synchronized void explode() { this.x = 1 / 0; }
          synchronized void ok() { this.x = 7; }
        }
        test Seed { Boom b = new Boom(); }
        """
        vm = make_vm(src)
        _, env = vm.run_test("Seed")
        b = env["b"]
        ex = Execution(vm)
        t1 = ex.spawn(lambda ctx: vm.interp.call_method(ctx, b, "explode", []))
        t2 = ex.spawn(lambda ctx: vm.interp.call_method(ctx, b, "ok", []))
        result = ex.run(RoundRobinScheduler())
        # The faulting thread must not wedge the other one.
        assert not result.deadlocked
        assert len(result.faults) == 1
        assert result.faults[0][1].kind == "division-by-zero"
        assert vm.heap.get(b.ref).fields["x"] == 7
        assert ex.thread(t1).status is ThreadStatus.FAULTED
        assert ex.thread(t2).status is ThreadStatus.DONE


class TestDeterminism:
    def test_same_seed_same_execution(self):
        def final_count(seed):
            vm = make_vm()
            _, env = vm.run_test("Seed")
            c = env["c"]
            recorder = Recorder()
            ex = Execution(vm, listeners=(recorder,))
            spawn_calls(vm, ex, c, "inc", 3)
            ex.run(RandomScheduler(seed))
            return (
                vm.heap.get(c.ref).fields["count"],
                [(e.label, e.thread_id, type(e).__name__) for e in recorder.trace],
            )

        assert final_count(123) == final_count(123)

    def test_step_budget_stops_runaway_loops(self):
        src = """
        class Spin { bool stop; void go() { while (!this.stop) { } } }
        test Seed { Spin s = new Spin(); }
        """
        vm = make_vm(src)
        _, env = vm.run_test("Seed")
        s = env["s"]
        ex = Execution(vm)
        ex.spawn(lambda ctx: vm.interp.call_method(ctx, s, "go", []))
        result = ex.run(RoundRobinScheduler(), max_steps=500)
        assert result.timed_out
        assert result.steps == 500
