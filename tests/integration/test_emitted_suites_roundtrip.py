"""Round-trip check on the emitted synthesized suites.

``bench_emit_suites.py`` writes the synthesized racy tests for the nine
subjects to ``benchmarks/out/suites/<key>.minij`` as self-contained MiniJ
programs.  Those files are the pipeline's user-facing artifact, so they
must stay loadable by the front end and runnable by the VM: every test
in every suite re-parses, type-resolves, and executes to quiescence
without faults (under the deterministic test scheduler, racy tests still
complete — racing is a property of *schedules*, not of completion).
"""

import pathlib

import pytest

from repro.detect import FastTrackDetector
from repro.lang import load
from repro.runtime import VM

SUITES_DIR = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "out" / "suites"
)

SUITE_FILES = sorted(SUITES_DIR.glob("*.minij"))


def test_suites_were_emitted():
    assert len(SUITE_FILES) == 9, (
        f"expected the nine subject suites in {SUITES_DIR}; "
        "run `pytest benchmarks/bench_emit_suites.py` to regenerate"
    )


@pytest.mark.parametrize(
    "path", SUITE_FILES, ids=[p.stem for p in SUITE_FILES]
)
def test_suite_reparses_and_executes(path):
    table = load(path.read_text())
    tests = table.program.tests
    assert tests, f"{path.name} contains no tests"
    for test in tests:
        vm = VM(table, seed=0)
        detector = FastTrackDetector()
        result, _ = vm.run_test(test.name, listeners=(detector,))
        assert result.completed, (
            f"{path.name}::{test.name} did not run to quiescence"
        )
        assert not result.faults, (
            f"{path.name}::{test.name} faulted: {result.faults}"
        )
