"""Synthesis soundness sweep: synthesized tests are always *runnable*.

For a sample of tests from every subject (and every rng-randomized
derivation), materialization must succeed and the test must execute
without faults under a neutral schedule — the races it aims for are
memory races, not crashes in the harness.
"""

import random

import pytest

from repro.context import derive_plans
from repro.narada import Narada
from repro.runtime import RoundRobinScheduler
from repro.subjects import all_subjects
from repro.synth import TestRunner, TestSynthesizer

SAMPLE_PER_CLASS = 8


@pytest.mark.parametrize("key", [s.key for s in all_subjects()])
def test_sampled_tests_materialize_and_run(key):
    subject = next(s for s in all_subjects() if s.key == key)
    narada = Narada(subject.load())
    report = narada.synthesize_for_class(subject.class_name)
    assert report.tests
    # Deterministic spread over the test list.
    stride = max(1, len(report.tests) // SAMPLE_PER_CLASS)
    sample = report.tests[::stride][:SAMPLE_PER_CLASS]
    runner = TestRunner(narada.table)
    for test in sample:
        outcome = runner.run(test, RoundRobinScheduler())
        assert outcome.setup_result.clean, (key, test.name)
        assert outcome.concurrent_result is not None, (key, test.name)
        result = outcome.concurrent_result
        assert not result.timed_out, (key, test.name)
        # Faults would mean the synthesizer built an ill-formed client;
        # deadlocks can only come from the library itself (none of the
        # subjects can deadlock).
        assert not result.faults, (key, test.name, result.faults)
        assert not result.deadlocked, (key, test.name)


@pytest.mark.parametrize("rng_seed", [1, 2, 3])
def test_randomized_setter_choice_stays_sound(rng_seed):
    # §4: "Our implementation randomly selects one of the possible
    # methods to derive the required method sequence."  Whatever the
    # choice, the resulting tests must still materialize and run.
    subject = next(s for s in all_subjects() if s.key == "C1")
    narada = Narada(subject.load())
    report = narada.synthesize_for_class(subject.class_name)
    plans = derive_plans(
        report.pairs,
        narada.analysis(),
        narada.table,
        rng=random.Random(rng_seed),
    )
    tests = TestSynthesizer(narada.table).synthesize(plans)
    runner = TestRunner(narada.table)
    for test in tests[:6]:
        outcome = runner.run(test, RoundRobinScheduler())
        assert outcome.clean, (rng_seed, test.name)
