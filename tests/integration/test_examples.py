"""Every shipped example must run cleanly end to end.

The examples double as the library's executable documentation; this
module keeps them from rotting.  Each example's ``main()`` is imported
and executed; its assertions and prints are part of the check.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesInventory:
    def test_at_least_quickstart_plus_three(self):
        assert "quickstart" in EXAMPLES
        assert len(EXAMPLES) >= 4

    def test_each_example_documents_how_to_run(self):
        for name in EXAMPLES:
            text = (EXAMPLES_DIR / f"{name}.py").read_text()
            assert "Run:" in text, name
            assert 'if __name__ == "__main__":' in text, name


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


class TestExampleContent:
    def test_quickstart_prints_figure3_shape(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert out.count("createSafeWriteBehindQueue") >= 2
        assert "harmful" in out

    def test_trace_tour_matches_paper_values(self, capsys):
        load_example("trace_analysis_tour").main()
        out = capsys.readouterr().out
        assert "(False, True)" in out   # label 5: unprotected write
        assert "(True, False)" in out   # label 6: writeable, protected
        assert "Ithis.x.o" in out

    def test_comparison_reproduces_headline(self, capsys):
        load_example("narada_vs_contege").main()
        out = capsys.readouterr().out
        assert "ConTeGe" in out and "Narada" in out
