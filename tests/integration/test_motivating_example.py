"""End-to-end reproduction of the paper's motivating example (§2).

From the Figure-5 seed test, Narada must synthesize the Figure-3 racy
test — two ``createSafeWriteBehindQueue`` wrappers around one coalesced
queue, ``removeFirst``/``addLast`` invoked from two threads — and the
RaceFuzzer analogue must detect and reproduce harmful races on the
coalesced queue's state.
"""

import pytest

from repro.fuzz import RaceFuzzer
from repro.narada import Narada
from repro.subjects import get_subject


@pytest.fixture(scope="module")
def pipeline():
    subject = get_subject("C1")
    narada = Narada(subject.load())
    report = narada.synthesize_for_class(subject.class_name)
    return subject, narada, report


class TestFigure3Synthesis:
    def test_figure3_shape_synthesized(self, pipeline):
        _, _, report = pipeline
        # Some synthesized test must: build two wrappers via the factory
        # sharing one coalesced queue, then call wrapper methods from
        # two threads.
        matches = []
        for test in report.tests:
            plan = test.plan
            if plan.shared_slot is None:
                continue
            if plan.shared_slot.class_name != "CoalescedWriteBehindQueue":
                continue
            if not plan.full_context:
                continue
            setters = [c.method for c in plan.left.setter_calls]
            if "createSafeWriteBehindQueue" in setters or any(
                c.is_constructor for c in plan.left.setter_calls
            ):
                matches.append(test)
        assert matches, "no Figure-3 style test synthesized"

    def test_receivers_distinct_in_figure3_test(self, pipeline):
        _, _, report = pipeline
        for test in report.tests:
            plan = test.plan
            if plan.shared_slot is None or not plan.full_context:
                continue
            if plan.shared_slot.class_name != "CoalescedWriteBehindQueue":
                continue
            assert plan.left.racy_call.receiver is not plan.right.racy_call.receiver

    def test_rendered_test_shows_shared_wrapping(self, pipeline):
        subject, narada, report = pipeline
        from repro.runtime import VM
        from repro.synth import materialize

        test = next(
            t
            for t in report.tests
            if t.plan.shared_slot is not None
            and t.plan.shared_slot.class_name == "CoalescedWriteBehindQueue"
            and t.plan.full_context
            and len(t.plan.left.setter_calls) == 1
        )
        rendered = materialize(test, VM(narada.table)).render()
        assert rendered.count("createSafeWriteBehindQueue") >= 2
        assert "Thread t1" in rendered and "Thread t2" in rendered


class TestRaceDetectionEndToEnd:
    def test_harmful_races_on_inner_queue(self, pipeline):
        subject, narada, report = pipeline
        fuzzer = RaceFuzzer(narada.table, random_runs=4)
        harmful_fields = set()
        for test in report.tests[:20]:
            fuzz = fuzzer.fuzz(test)
            for record in fuzz.harmful():
                harmful_fields.add((record.class_name, record.field_name))
        assert ("CoalescedWriteBehindQueue", "count") in harmful_fields

    def test_race_actually_corrupts_state(self, pipeline):
        # Beyond detection: find a schedule where the lost update is
        # observable in the final heap.
        subject, narada, report = pipeline
        from repro.runtime import RandomScheduler
        from repro.synth import TestRunner

        test = next(
            t
            for t in report.tests
            if t.plan.full_context
            and t.plan.shared_slot is not None
            and t.plan.shared_slot.class_name == "CoalescedWriteBehindQueue"
            and {t.plan.left.side.method_id()[1], t.plan.right.side.method_id()[1]}
            == {"addLast"}
        )
        runner = TestRunner(narada.table)
        finals = set()
        for seed in range(25):
            outcome = runner.run(test, RandomScheduler(seed))
            assert outcome.clean
            for obj in outcome.materialized.vm.heap.objects():
                if obj.class_name == "CoalescedWriteBehindQueue":
                    if obj.fields["count"] > 0:
                        finals.add(obj.fields["count"])
        assert len(finals) >= 2, f"no lost update observed: {finals}"
