"""Property: the pipeline is total over randomly generated seed tests.

For arbitrary straight-line seed suites over a fixed library, the whole
chain — trace analysis, pair generation, context derivation, synthesis,
materialization, standalone emission — must never crash, and every
synthesized test must execute cleanly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import load
from repro.narada import Narada
from repro.runtime import RoundRobinScheduler
from repro.synth import TestRunner
from repro.synth.emit import emit_standalone_program

LIBRARY = """
class Item { int tag; }
class Box {
  Item content;
  void fill(Item e) { this.content = e; }
  Item peek() { return this.content; }
}
class Shelf {
  Box box;
  int uses;
  void place(Box b) { this.box = b; }
  synchronized void use() { this.uses = this.uses + 1; }
  void touch() { this.uses = this.uses + 1; }
  Box take() { return this.box; }
}
"""

#: Statement templates; {i} is a unique suffix.
CALL_POOL = [
    "Item it{i} = new Item();",
    "Box bx{i} = new Box();",
    "Shelf sh{i} = new Shelf();",
    "bx0.fill(it0);",
    "Item got{i} = bx0.peek();",
    "sh0.place(bx0);",
    "sh0.use();",
    "sh0.touch();",
    "Box back{i} = sh0.take();",
]

PRELUDE = [
    "Item it0 = new Item();",
    "Box bx0 = new Box();",
    "Shelf sh0 = new Shelf();",
]


@st.composite
def seed_bodies(draw):
    extra = draw(st.lists(st.sampled_from(CALL_POOL), min_size=1, max_size=8))
    lines = list(PRELUDE)
    for index, template in enumerate(extra, start=1):
        lines.append(template.format(i=index))
    return lines


class TestPipelineTotality:
    @given(seed_bodies())
    @settings(max_examples=25, deadline=None)
    def test_pipeline_never_crashes_and_tests_run_clean(self, lines):
        source = LIBRARY + "test Seed {\n" + "\n".join(lines) + "\n}"
        narada = Narada(source)
        for class_name in ("Shelf", "Box"):
            report = narada.synthesize_for_class(class_name)
            assert report.test_count <= report.pair_count or (
                report.pair_count == 0 and report.test_count == 0
            )
            runner = TestRunner(narada.table)
            for test in report.tests[:3]:
                outcome = runner.run(test, RoundRobinScheduler())
                assert outcome.setup_result.clean
                result = outcome.concurrent_result
                assert result is not None
                assert not result.faults, (lines, test.name, result.faults)

    @given(seed_bodies())
    @settings(max_examples=15, deadline=None)
    def test_emitted_programs_always_load(self, lines):
        source = LIBRARY + "test Seed {\n" + "\n".join(lines) + "\n}"
        narada = Narada(source)
        report = narada.synthesize_for_class("Shelf")
        if not report.tests:
            return
        emitted = emit_standalone_program(narada.table, report.tests[:3])
        load(emitted)
