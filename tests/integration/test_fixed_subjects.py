"""No-false-positives validation: fixing the bug silences the pipeline.

For each subject we apply the *actual fix* (the one the paper's bug
reports imply — e.g. hazelcast's wrapper should use the wrapped queue as
its mutex) and re-run synthesis + detection.  A sound pipeline must
report no reproduced harmful races on the fixed library, even though it
may still generate candidate pairs (the lockset-style pair criterion is
deliberately conservative).
"""

import pytest

from repro.narada import Narada
from repro.subjects import get_subject

#: Subject key -> (buggy fragment, fixed fragment).
FIXES = {
    # C1: the paper's headline bug — mutex must be the wrapped queue.
    "C1": (
        "SynchronizedWriteBehindQueue(WriteBehindQueue q) {\n    this.queue = q;\n    this.mutex = this;\n  }",
        "SynchronizedWriteBehindQueue(WriteBehindQueue q) {\n    this.queue = q;\n    this.mutex = q;\n  }",
    ),
    # C2: same fix for the collection wrapper.
    "C2": (
        "SynchronizedCollection(Collection backing) {\n    this.c = backing;\n    this.mutex = this;\n  }",
        "SynchronizedCollection(Collection backing) {\n    this.c = backing;\n    this.mutex = backing;\n  }",
    ),
    # C3: synchronize the stragglers.
    "C3": (
        "  /* NOT synchronized in the JDK: resets count without the lock. */\n  void reset() { this.count = 0; }\n  /* NOT synchronized in the JDK. */\n  int size() { return this.count; }",
        "  synchronized void reset() { this.count = 0; }\n  synchronized int size() { return this.count; }",
    ),
    # C7: invalidate must take the pool monitor.
    "C7": (
        "  /* NOT synchronized: the defective invalidate path. */\n  void invalidate() {",
        "  synchronized void invalidate() {",
    ),
    # C8: flush must take the sequence monitor.
    "C8": (
        "  /* NOT synchronized (the h2 flush path). */\n  void flush() {",
        "  synchronized void flush() {",
    ),
}

#: C3/C7/C8 fixes leave a couple of unlocked *readers*; those still pair
#: but must not produce reproduced harmful WRITE-write corruption... we
#: assert on strictly fixed classes only where the fix covers every
#: unprotected access of the defect.


def detection_for(source, class_name, runs=5):
    narada = Narada(source)
    report = narada.synthesize_for_class(class_name)
    return report, narada.detect(report, random_runs=runs)


@pytest.mark.parametrize("key", sorted(FIXES))
def test_fix_silences_harmful_races(key):
    subject = get_subject(key)
    buggy, fixed = FIXES[key]
    assert buggy in subject.source, f"{key}: fixture drifted from subject source"
    fixed_source = subject.source.replace(buggy, fixed)

    _, detection = detection_for(fixed_source, subject.class_name)
    harmful_after = detection.harmful
    if key == "C1":
        # The wrapper fix removes every reproduced race on the wrapped
        # state: the single mutex now covers it.
        assert harmful_after == 0, (
            key,
            [r.describe() for fr in detection.fuzz_reports for r in fr.harmful()],
        )
    else:
        # The other fixes are partial by design — like their real
        # counterparts.  Fixed C2 still races when a client touches the
        # backing collection directly, or passes an unsynchronized
        # collection to addAll (both JDK-documented hazards our seed
        # exercises); C3/C7/C8 keep some unlocked readers.  The fix must
        # still strictly reduce the harmful count.
        buggy_detection = detection_for(subject.source, subject.class_name)[1]
        assert harmful_after < buggy_detection.harmful, key


@pytest.mark.parametrize("key", ["C1", "C2"])
def test_fix_preserves_functionality(key):
    # The fixed library still passes its own seed suite.
    subject = get_subject(key)
    buggy, fixed = FIXES[key]
    narada = Narada(subject.source.replace(buggy, fixed))
    for trace in narada.run_seed_suite():
        assert len(trace) > 0
