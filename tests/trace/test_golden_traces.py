"""Golden-trace regression suite: the event stream is bit-identical.

The VM's value to every consumer (detectors, recorders, fuzzers, the
synthesis pipeline) is a *deterministic, stable* event stream: same
program + same seed + same scheduler => same events, labels, and
interleaving points.  The hot-path optimizations (purity fast path,
event-construction elision, dispatch caches) are only admissible because
they preserve that stream exactly.

These tests pin SHA-256 digests of the formatted traces for the nine
paper subjects' seed tests and for a small concurrent scenario under two
schedulers.  If any digest changes, an optimization altered observable
behavior — event contents, labels, ordering, or scheduling points — and
must be fixed, not re-pinned, unless the change is a deliberate,
reviewed semantic change to the trace format.
"""

import hashlib

import pytest

from repro.lang import load
from repro.runtime import Execution, RandomScheduler, RoundRobinScheduler, VM
from repro.subjects import all_subjects, get_subject
from repro.trace import Recorder
from repro.trace.recorder import format_trace


def _test_digest(table, test_name: str) -> str:
    """Digest of the formatted trace of one sequential seed test."""
    vm = VM(table, seed=0)
    recorder = Recorder()
    vm.run_test(test_name, listeners=(recorder,))
    return hashlib.sha256(format_trace(recorder.trace).encode()).hexdigest()


def _subject_digest(subject) -> str:
    """Combined digest over every test in a subject, in program order."""
    table = subject.load()
    parts = [
        f"{test.name}:{_test_digest(table, test.name)}"
        for test in table.program.tests
    ]
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


#: Pinned combined digests for the paper's nine subjects (Table 3).
GOLDEN_SUBJECT_DIGESTS = {
    "C1": "1ffcda49765083b859cc4960a1a2f45d641ebc77aff14a85e34e21a8fe1a1dc5",
    "C2": "b4fe203f64f708582fa89e6263b5212ac385e8d6319beadc15aff66e1999ab51",
    "C3": "86e4ef195bbd329795f73ce36bcbdd96ac36a87b0d3049093a90dffb56097838",
    "C4": "982c200df7ca7ab334399099a8a28bf28e44f4fab7c082adf8321cfd2d3fead9",
    "C5": "f695aed7e7305218ce78104f06db504c7050c2899db6c57e603038e6a1a45153",
    "C6": "5d1c515a3c94167f28ad6717cf66f6bed8bf4d6af81d57c5a80d2bc371c37811",
    "C7": "84112adb9cd96b9c2dc17f14c5c6d0191dfc49724af2ad303f1b769e7d91b377",
    "C8": "bcc01a3bc54c9f93dae8b054e261e74021b6e4d7dfb4de9a9ebcca132f54dfa1",
    "C9": "7a570e9842292ee680d0dcb1fe1c1f3f2156e3bf24213d4a3170fe50e7e85d25",
}


def test_all_subjects_are_pinned():
    assert sorted(GOLDEN_SUBJECT_DIGESTS) == sorted(
        s.key for s in all_subjects()
    )


@pytest.mark.parametrize("key", sorted(GOLDEN_SUBJECT_DIGESTS))
def test_subject_seed_trace_digest(key):
    subject = get_subject(key)
    assert _subject_digest(subject) == GOLDEN_SUBJECT_DIGESTS[key], (
        f"golden trace digest changed for subject {key}: the VM's event "
        "stream is no longer bit-identical to the pinned behavior"
    )


# ----------------------------------------------------------------------
# Concurrent scenario: two threads, unsynchronized + synchronized
# increments, under a deterministic and a seeded-random scheduler.

COUNTER_SOURCE = """
class Counter {
  int n;
  Object lock;
  Counter() { this.lock = new Object_(); }
  void inc() { this.n = this.n + 1; }
  synchronized void sinc() { this.n = this.n + 1; }
}
class Object_ { int pad; }
test Seed { Counter c = new Counter(); }
"""


def _counter_run(scheduler):
    table = load(COUNTER_SOURCE)
    vm = VM(table, seed=0)
    _, env = vm.run_test("Seed")
    counter = env["c"]
    recorder = Recorder()
    execution = Execution(vm, listeners=(recorder,))
    for _ in range(2):
        def body(ctx):
            yield from vm.interp.call_method(ctx, counter, "inc", [])
            yield from vm.interp.call_method(ctx, counter, "sinc", [])

        execution.spawn(body)
    result = execution.run(scheduler)
    assert result.completed
    digest = hashlib.sha256(format_trace(recorder.trace).encode()).hexdigest()
    return result.steps, digest


PIN_RR_STEPS = 23
PIN_RR_DIGEST = "8a22856d982d295e063bef17a0866583c9688509b329010341fb56fd525ef38e"
PIN_RANDOM_STEPS = 22
PIN_RANDOM_DIGEST = (
    "8e4b3f6a0597d6f6ba268317a04b16e623273837db75de15a57a08cf61283945"
)


def test_concurrent_trace_round_robin():
    steps, digest = _counter_run(RoundRobinScheduler())
    assert steps == PIN_RR_STEPS
    assert digest == PIN_RR_DIGEST


def test_concurrent_trace_random_seeded():
    steps, digest = _counter_run(RandomScheduler(7))
    assert steps == PIN_RANDOM_STEPS
    assert digest == PIN_RANDOM_DIGEST
