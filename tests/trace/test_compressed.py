"""Run-length compression of packed traces (repro/trace/compressed.py).

The compressor's contract: the segment plan partitions the row range
exactly, every claimed repeat occurrence is signature-identical to the
first (never assumed — re-verified here against the raw columns), and
compression is purely an access plan — the packed trace, its digest,
and every row accessor are untouched.
"""

import pytest

from repro.lang import load
from repro.runtime import VM, Execution, RoundRobinScheduler
from repro.trace.columnar import ColumnarRecorder
from repro.trace.compressed import (
    SIGNATURE_COLUMNS,
    CompressedTrace,
    LiteralSeg,
    RepeatSeg,
    compress_trace,
)

HOT_LOOP = """
class Worker {
  int acc;
  void spin(int n) {
    int i = 0;
    while (i < n) {
      this.acc = this.acc + i;
      i = i + 1;
    }
  }
}
test Seed { Worker w = new Worker(); }
"""


def record_spin(n: int, threads: int = 2):
    table = load(HOT_LOOP)
    vm = VM(table)
    _, env = vm.run_test("Seed")
    worker = env["w"]
    recorder = ColumnarRecorder("spin")
    execution = Execution(vm, listeners=(recorder,))
    for _ in range(threads):
        execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, worker, "spin", [n])
        )
    result = execution.run(RoundRobinScheduler(), max_steps=100 * n + 10_000)
    assert result.completed
    return recorder.packed


def signature(packed, i):
    return tuple(getattr(packed, name)[i] for name in SIGNATURE_COLUMNS)


def assert_well_formed(compressed: CompressedTrace):
    """Segments partition [0, len) and repeats verify row-by-row."""
    packed = compressed.packed
    position = 0
    for seg in compressed.segments:
        assert seg.start == position
        assert seg.stop > seg.start
        position = seg.stop
        if isinstance(seg, RepeatSeg):
            assert seg.count >= 2
            for row in range(seg.start + seg.period, seg.stop):
                assert signature(packed, row) == signature(
                    packed, row - seg.period
                )
    assert position == len(packed)


class TestCompressTrace:
    def test_hot_loop_compresses(self):
        packed = record_spin(300)
        compressed = compress_trace(packed)
        assert_well_formed(compressed)
        stats = compressed.stats()
        assert stats.ratio >= 3.0
        assert stats.repeat_blocks >= 1
        assert stats.total_rows == len(packed)
        repeats = [
            seg for seg in compressed.segments if isinstance(seg, RepeatSeg)
        ]
        assert max(seg.count for seg in repeats) >= 100

    def test_compression_is_an_access_plan_only(self):
        packed = record_spin(50)
        before = packed.digest()
        compressed = compress_trace(packed)
        assert compressed.packed is packed
        assert compressed.digest() == before
        assert packed.digest() == before
        assert len(compressed) == len(packed)
        assert compressed.test_name == packed.test_name

    def test_non_repetitive_trace_stays_literal(self):
        table = load(HOT_LOOP)
        vm = VM(table, seed=0)
        recorder = ColumnarRecorder("Seed")
        vm.run_test("Seed", listeners=(recorder,))
        compressed = compress_trace(recorder.packed)
        assert_well_formed(compressed)
        assert all(
            isinstance(seg, LiteralSeg) for seg in compressed.segments
        )
        assert compressed.stats().ratio == 1.0

    def test_min_saved_threshold_suppresses_small_repeats(self):
        packed = record_spin(300)
        huge = compress_trace(packed, min_saved=10**9)
        assert all(isinstance(seg, LiteralSeg) for seg in huge.segments)
        assert_well_formed(huge)

    def test_max_period_bounds_detection(self):
        packed = record_spin(300)
        compressed = compress_trace(packed, max_period=1)
        assert_well_formed(compressed)
        for seg in compressed.segments:
            if isinstance(seg, RepeatSeg):
                assert seg.period == 1

    def test_empty_trace(self):
        from repro.trace.columnar import PackedTrace

        compressed = compress_trace(PackedTrace("empty"))
        assert compressed.segments == []
        assert len(compressed) == 0
        assert compressed.stats().ratio == 1.0

    @pytest.mark.parametrize("n", [5, 40, 300])
    def test_single_thread_loop_every_size(self, n):
        packed = record_spin(n, threads=1)
        compressed = compress_trace(packed)
        assert_well_formed(compressed)
        if n >= 40:
            assert compressed.stats().ratio >= 3.0
