"""Unit tests for trace events, Trace helpers, and formatting."""

from repro.lang import load
from repro.runtime import VM
from repro.runtime.values import ObjRef
from repro.trace import (
    AllocEvent,
    ForkEvent,
    InvokeEvent,
    ReadEvent,
    Recorder,
    Trace,
    WriteEvent,
    format_event,
    format_trace,
)

SOURCE = """
class Pair {
  int x;
  Pair other;
  synchronized void bump() { this.x = this.x + 1; }
  void link(Pair p) { this.other = p; }
}
test Seed {
  Pair a = new Pair();
  Pair b = new Pair();
  a.link(b);
  a.bump();
}
"""


def record():
    table = load(SOURCE)
    vm = VM(table)
    recorder = Recorder("Seed")
    result, env = vm.run_test("Seed", listeners=(recorder,))
    assert result.clean
    return recorder.trace, env


class TestTraceHelpers:
    def test_memory_events_are_accesses(self):
        trace, _ = record()
        for event in trace.memory_events():
            assert isinstance(event, (ReadEvent, WriteEvent))
        assert len(trace.memory_events()) >= 3

    def test_client_invocations_in_order(self):
        trace, _ = record()
        methods = [e.method for e in trace.client_invocations()]
        assert methods == ["link", "bump"]
        assert all(e.from_client for e in trace.client_invocations())

    def test_len_and_iter_agree(self):
        trace, _ = record()
        assert len(trace) == len(list(trace))

    def test_addresses_distinguish_objects(self):
        trace, env = record()
        writes = [e for e in trace if isinstance(e, WriteEvent)]
        x_writes = [w for w in writes if w.field_name == "x"]
        other_writes = [w for w in writes if w.field_name == "other"]
        assert x_writes and other_writes
        assert x_writes[0].address() != other_writes[0].address()
        assert x_writes[0].address()[0] == env["a"].ref


class TestEventContent:
    def test_write_event_carries_old_value(self):
        trace, _ = record()
        x_write = next(
            e
            for e in trace
            if isinstance(e, WriteEvent) and e.field_name == "x"
        )
        assert x_write.old_value == 0
        assert x_write.value == 1

    def test_locks_held_during_synchronized_body(self):
        trace, env = record()
        x_write = next(
            e
            for e in trace
            if isinstance(e, WriteEvent) and e.field_name == "x"
        )
        assert env["a"].ref in x_write.locks_held

    def test_link_write_carries_ref_value(self):
        trace, env = record()
        other_write = next(
            e
            for e in trace
            if isinstance(e, WriteEvent) and e.field_name == "other"
        )
        assert isinstance(other_write.value, ObjRef)
        assert other_write.value.ref == env["b"].ref

    def test_invoke_event_linkage(self):
        trace, _ = record()
        invoke = trace.client_invocations()[0]
        assert isinstance(invoke, InvokeEvent)
        assert invoke.new_call_index > 0
        returns = [
            e
            for e in trace.events
            if getattr(e, "returning_call_index", None) == invoke.new_call_index
        ]
        assert len(returns) == 1
        assert returns[0].to_client


class TestHashCaching:
    def test_hash_is_cached_after_first_call(self):
        event = ForkEvent(
            label=1, thread_id=0, node_id=-1, call_index=0, child_thread=2
        )
        first = hash(event)
        assert event._hash == first
        assert hash(event) == first
        # The cache, not the fields, serves subsequent calls: mutating a
        # field no longer changes the hash (events are append-only in
        # practice; the detectors key dicts/sets on them mid-stream).
        event.child_thread = 99
        assert hash(event) == first

    def test_equal_events_hash_equal(self):
        def make():
            return ReadEvent(
                label=5, thread_id=1, node_id=2, call_index=3, obj=4,
                class_name="Pair", field_name="x", value=7,
                locks_held=frozenset({4}),
            )

        a, b = make(), make()
        assert a == b
        assert hash(a) == hash(b)


class TestFormatting:
    def test_every_event_formats(self):
        trace, _ = record()
        for event in trace:
            line = format_event(event)
            assert line.startswith(f"[{event.label:>5}]")

    def test_format_trace_one_line_per_event(self):
        trace, _ = record()
        assert len(format_trace(trace).splitlines()) == len(trace)

    def test_specific_renderings(self):
        trace, _ = record()
        text = format_trace(trace)
        assert "alloc Pair#" in text
        assert "client invoke" in text
        assert "lock object" in text
        assert "unlock object" in text
        assert ":= 1" in text  # the bump write

    def test_fork_event_formats(self):
        event = ForkEvent(
            label=1, thread_id=0, node_id=-1, call_index=0, child_thread=2
        )
        assert "fork t2" in format_event(event)

    def test_alloc_event_library_flag(self):
        event = AllocEvent(
            label=0,
            thread_id=0,
            node_id=1,
            call_index=3,
            ref=9,
            class_name="X",
            in_library=True,
        )
        assert "(lib)" in format_event(event)

    def test_empty_trace(self):
        assert format_trace(Trace()) == ""
        assert Trace().memory_events() == []
