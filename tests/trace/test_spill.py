"""Spill-to-disk recording (repro/trace/spill.py).

The contract: a :class:`SpillingRecorder` run is indistinguishable
from an in-memory :class:`ColumnarRecorder` run — same digest, same
events, same analysis results, same serialized form — while the column
bytes live in unlinked mapped files instead of the heap.
"""

import os

import pytest

from repro.analysis.sweep import create_pass, run_sweep
from repro.trace.columnar import ColumnarRecorder, PackedTrace
from repro.trace.compressed import compress_trace
from repro.trace.spill import (
    DEFAULT_SPILL_ROWS,
    SpilledTrace,
    SpillingRecorder,
    spill_rows_from_env,
)

from tests.trace.test_compressed import HOT_LOOP, record_spin


def record_both(n: int, spill_rows: int):
    """The same spin run through both recorders."""
    from repro.lang import load
    from repro.runtime import VM, Execution, RoundRobinScheduler

    table = load(HOT_LOOP)
    results = []
    for recorder in (
        ColumnarRecorder("spin"),
        SpillingRecorder("spin", spill_rows=spill_rows),
    ):
        vm = VM(table)
        _, env = vm.run_test("Seed")
        worker = env["w"]
        execution = Execution(vm, listeners=(recorder,))
        for _ in range(2):
            execution.spawn(
                lambda ctx: vm.interp.call_method(ctx, worker, "spin", [n])
            )
        result = execution.run(
            RoundRobinScheduler(), max_steps=100 * n + 10_000
        )
        assert result.completed
        results.append(recorder.packed)
    return results


class TestSpilledIdentity:
    def test_digest_events_counts_identical(self):
        memory, spilled = record_both(60, spill_rows=32)
        assert isinstance(spilled, SpilledTrace)
        assert len(spilled) == len(memory)
        assert spilled.digest() == memory.digest()
        assert spilled.counts() == memory.counts()
        assert [spilled.event(i) for i in range(len(spilled))] == [
            memory.event(i) for i in range(len(memory))
        ]

    def test_sweep_results_identical(self):
        memory, spilled = record_both(60, spill_rows=32)
        for trace in (spilled, compress_trace(spilled)):
            mem_pass = create_pass("fasttrack")
            spill_pass = create_pass("fasttrack")
            run_sweep((mem_pass,), memory)
            run_sweep((spill_pass,), trace)
            assert list(spill_pass.races) == list(mem_pass.races)
            assert (
                spill_pass.races.dynamic_count == mem_pass.races.dynamic_count
            )

    def test_serialization_roundtrip(self):
        from repro.narada.serial import decode_packed_trace, encode_packed_trace

        memory, spilled = record_both(30, spill_rows=16)
        decoded = decode_packed_trace(encode_packed_trace(spilled))
        assert decoded.digest() == memory.digest()

    def test_flush_boundary_exact_multiple(self):
        """A trace length landing exactly on the chunk size."""
        recorder = SpillingRecorder("t", spill_rows=4)
        memory = ColumnarRecorder("t")
        source = record_spin(10, threads=1)
        rows = len(source)
        take = rows - (rows % 4)
        for i in range(take):
            event = source.event(i)
            recorder.on_event(event)
            memory.on_event(event)
        assert recorder.packed.digest() == memory.packed.digest()


class TestSpilledTraceBehavior:
    def test_append_rejected(self):
        recorder = SpillingRecorder("t", spill_rows=8)
        trace = recorder.packed
        with pytest.raises(TypeError):
            trace.append(object())

    def test_nbytes_counts_side_tables_only(self):
        memory, spilled = record_both(60, spill_rows=32)
        assert spilled.nbytes() == spilled.side_nbytes()
        assert spilled.nbytes() < memory.nbytes()
        assert memory.nbytes() == (
            memory.column_nbytes() + memory.side_nbytes()
        )

    def test_empty_recorder_finalizes(self):
        recorder = SpillingRecorder("empty", spill_rows=8)
        trace = recorder.packed
        assert len(trace) == 0
        assert trace.digest() == PackedTrace("empty").digest()

    def test_close_releases_mappings(self):
        _, spilled = record_both(30, spill_rows=16)
        spilled.close()
        assert spilled._maps == []

    def test_spill_files_unlinked_after_finalize(self):
        recorder = SpillingRecorder("t", spill_rows=8)
        spill_dir = recorder._dir
        source = record_spin(10, threads=1)
        for i in range(len(source)):
            recorder.on_event(source.event(i))
        recorder.packed
        assert not os.path.exists(spill_dir)


class TestFactory:
    def test_create_defaults_to_in_memory(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPILL_ROWS", raising=False)
        recorder = ColumnarRecorder.create("t")
        assert isinstance(recorder, ColumnarRecorder)

    def test_create_spills_when_env_set(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_ROWS", "128")
        recorder = ColumnarRecorder.create("t")
        assert isinstance(recorder, SpillingRecorder)
        assert recorder.spill_rows == 128
        assert isinstance(recorder.packed, SpilledTrace)

    def test_create_explicit_spill_rows_wins(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPILL_ROWS", raising=False)
        recorder = ColumnarRecorder.create("t", spill_rows=64)
        assert isinstance(recorder, SpillingRecorder)
        assert recorder.spill_rows == 64

    @pytest.mark.parametrize("raw", ["", "0", "-5", "nope"])
    def test_env_rejects_non_positive_and_garbage(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SPILL_ROWS", raw)
        assert spill_rows_from_env() is None
        assert isinstance(ColumnarRecorder.create("t"), ColumnarRecorder)

    def test_default_threshold_is_sane(self):
        assert DEFAULT_SPILL_ROWS >= 1024
