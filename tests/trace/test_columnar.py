"""PackedTrace: roundtrip fidelity, digests, and serialization.

The columnar representation is only admissible if its lazy object view
reconstructs the recorded event stream *exactly* — same classes, same
field values, same formatting — for every subject.  These tests pin
that equivalence against the golden-trace digests, exercise the value
packing edge cases (bools vs ints, >64-bit ints, ObjRef interning), and
check the serial codec roundtrips packed traces bit-identically.
"""

import hashlib

import pytest

from repro.lang import load
from repro.runtime import VM
from repro.runtime.values import ObjRef
from repro.subjects import all_subjects, get_subject
from repro.trace import ColumnarRecorder, PackedTrace, Recorder
from repro.trace.events import ReadEvent, WriteEvent
from repro.trace.recorder import format_trace

from tests.trace.test_golden_traces import GOLDEN_SUBJECT_DIGESTS


def record_both(table, test_name):
    """Record one seed test with the object and columnar recorders."""
    vm = VM(table, seed=0)
    recorder = Recorder(test_name)
    columnar = ColumnarRecorder(test_name)
    vm.run_test(test_name, listeners=(recorder, columnar))
    return recorder.trace, columnar.packed


class TestLazyViewFidelity:
    @pytest.mark.parametrize("key", ["C1", "C4", "C6", "C9"])
    def test_reconstructed_events_equal_recorded(self, key):
        table = get_subject(key).load()
        for test in table.program.tests:
            trace, packed = record_both(table, test.name)
            assert len(packed) == len(trace)
            assert list(packed) == trace.events
            assert format_trace(packed.to_trace()) == format_trace(trace)

    @pytest.mark.parametrize("key", ["C1", "C4", "C6", "C9"])
    def test_helpers_match_object_trace(self, key):
        table = get_subject(key).load()
        for test in table.program.tests:
            trace, packed = record_both(table, test.name)
            assert packed.memory_events() == trace.memory_events()
            assert packed.client_invocations() == trace.client_invocations()

    def test_access_row_accessors(self):
        table = get_subject("C1").load()
        test = table.program.tests[0]
        _, packed = record_both(table, test.name)
        from repro.trace.columnar import OP_READ, OP_WRITE

        checked = 0
        for i in range(len(packed)):
            if packed.op[i] not in (OP_READ, OP_WRITE):
                continue
            event = packed.event(i)
            assert packed.address_at(i) == event.address()
            assert packed.value_at(i) == event.value
            if packed.op[i] == OP_WRITE:
                assert packed.old_value_at(i) == event.old_value
            checked += 1
        assert checked > 0


class TestGoldenDigestsViaPackedPath:
    """The golden-trace pins hold when recording goes through columns.

    This is the acceptance gate for replacing the seed-suite Recorder:
    formatting the lazy view of a packed recording must produce exactly
    the pinned pre-change digests.
    """

    @pytest.mark.parametrize("key", sorted(GOLDEN_SUBJECT_DIGESTS))
    def test_subject_digest_via_columnar_recorder(self, key):
        table = get_subject(key).load()
        parts = []
        for test in table.program.tests:
            vm = VM(table, seed=0)
            columnar = ColumnarRecorder(test.name)
            vm.run_test(test.name, listeners=(columnar,))
            digest = hashlib.sha256(
                format_trace(columnar.packed.to_trace()).encode()
            ).hexdigest()
            parts.append(f"{test.name}:{digest}")
        combined = hashlib.sha256("\n".join(parts).encode()).hexdigest()
        assert combined == GOLDEN_SUBJECT_DIGESTS[key], (
            f"columnar recording of subject {key} is not bit-identical "
            "to the pinned object-path trace"
        )

    def test_all_subjects_covered(self):
        assert sorted(GOLDEN_SUBJECT_DIGESTS) == sorted(
            s.key for s in all_subjects()
        )


class TestInterleavingDigest:
    def test_digest_is_stable_across_recordings(self):
        table = get_subject("C1").load()
        test = table.program.tests[0]
        _, first = record_both(table, test.name)
        _, second = record_both(table, test.name)
        assert first.digest() == second.digest()

    def test_digest_distinguishes_interleavings(self):
        digests = set()
        for key in ("C1", "C2", "C3"):
            table = get_subject(key).load()
            _, packed = record_both(table, table.program.tests[0].name)
            digests.add(packed.digest())
        assert len(digests) == 3

    def test_digest_sensitive_to_values(self):
        a = PackedTrace()
        b = PackedTrace()
        event = WriteEvent(
            label=0, thread_id=1, node_id=2, call_index=0, obj=3,
            class_name="C", field_name="f", value=1, old_value=0,
            locks_held=frozenset(),
        )
        changed = WriteEvent(
            label=0, thread_id=1, node_id=2, call_index=0, obj=3,
            class_name="C", field_name="f", value=2, old_value=0,
            locks_held=frozenset(),
        )
        a.append(event)
        b.append(changed)
        assert a.digest() != b.digest()


class TestValuePacking:
    def _roundtrip(self, value, old_value=None):
        packed = PackedTrace()
        packed.append(
            WriteEvent(
                label=0, thread_id=1, node_id=2, call_index=0, obj=3,
                class_name="C", field_name="f", value=value,
                old_value=old_value, locks_held=frozenset({3, 9}),
            )
        )
        event = packed.event(0)
        assert type(event.value) is type(value)
        assert event.value == value
        assert event.old_value == old_value
        return packed

    def test_bool_is_not_confused_with_int(self):
        packed = self._roundtrip(True, old_value=1)
        event = packed.event(0)
        assert event.value is True
        assert type(event.old_value) is int

    def test_false_and_zero_distinct(self):
        event = self._roundtrip(False, old_value=0).event(0)
        assert event.value is False
        assert event.old_value == 0 and type(event.old_value) is int

    def test_none_value(self):
        assert self._roundtrip(None).event(0).value is None

    def test_big_int_overflows_to_cell(self):
        big = 1 << 80
        packed = self._roundtrip(big, old_value=-(1 << 70))
        assert len(packed.cells) == 2
        event = packed.event(0)
        assert event.value == big
        assert event.old_value == -(1 << 70)

    def test_objref_interns_class_name(self):
        ref = ObjRef(42, "Widget")
        event = self._roundtrip(ref).event(0)
        assert isinstance(event.value, ObjRef)
        assert event.value == ref

    def test_lockset_roundtrip(self):
        event = self._roundtrip(7).event(0)
        assert event.locks_held == frozenset({3, 9})


class TestSerialization:
    def _seed_traces(self, key):
        table = get_subject(key).load()
        traces = []
        for test in table.program.tests:
            _, packed = record_both(table, test.name)
            traces.append(packed)
        return traces

    @pytest.mark.parametrize("key", ["C1", "C6"])
    def test_packed_trace_roundtrip(self, key):
        from repro.narada.serial import (
            canonical_json,
            decode_packed_trace,
            encode_packed_trace,
        )

        for packed in self._seed_traces(key):
            data = encode_packed_trace(packed)
            restored = decode_packed_trace(data)
            assert restored.test_name == packed.test_name
            assert restored.digest() == packed.digest()
            assert list(restored) == list(packed)
            # Re-encoding is bit-identical (cache/worker canonical form).
            assert canonical_json(encode_packed_trace(restored)) == (
                canonical_json(data)
            )

    def test_restored_trace_stays_appendable(self):
        from repro.narada.serial import (
            decode_packed_trace,
            encode_packed_trace,
        )

        packed = PackedTrace("t")
        packed.append(
            ReadEvent(
                label=0, thread_id=1, node_id=2, call_index=0, obj=3,
                class_name="C", field_name="f", value=5,
                locks_held=frozenset(),
            )
        )
        restored = decode_packed_trace(encode_packed_trace(packed))
        restored.append(
            ReadEvent(
                label=1, thread_id=1, node_id=2, call_index=0, obj=3,
                class_name="C", field_name="f", value=6,
                locks_held=frozenset(),
            )
        )
        # Interning continued from the restored tables: no duplicates.
        assert restored.strtab == packed.strtab
        assert restored.adr[0] == restored.adr[1]

    def test_seed_trace_bundle_roundtrip(self):
        from repro.narada.serial import (
            decode_seed_traces,
            encode_seed_traces,
        )

        traces = self._seed_traces("C1")
        restored = decode_seed_traces(encode_seed_traces(traces))
        assert [t.digest() for t in restored] == [
            t.digest() for t in traces
        ]


class TestAccounting:
    def test_counts_and_nbytes(self):
        table = get_subject("C1").load()
        test = table.program.tests[0]
        trace, packed = record_both(table, test.name)
        counts = packed.counts()
        assert sum(counts.values()) == len(trace)
        assert counts["read"] == sum(
            1 for e in trace if type(e) is ReadEvent
        )
        assert packed.nbytes() > 0

    def test_packed_is_smaller_than_object_events(self):
        import sys

        table = get_subject("C6").load()
        test = table.program.tests[0]
        trace, packed = record_both(table, test.name)
        object_bytes = sum(sys.getsizeof(e) for e in trace.events)
        assert packed.nbytes() < object_bytes
