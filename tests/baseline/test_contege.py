"""Tests for the ConTeGe random baseline."""

from repro.baseline import ConTeGe
from repro.baseline.contege import _interleavings
from repro.lang import load
from repro.subjects import get_subject

CRASHY = """
class Bounded {
  IntArray data;
  int count;
  int capacity;
  Bounded(int capacity) {
    this.data = new IntArray(capacity);
    this.capacity = capacity;
    this.count = 0;
  }
  bool add(int v) {
    if (this.count == this.capacity) { return false; }
    this.data.set(this.count, v);
    this.count = this.count + 1;
    return true;
  }
  int size() { return this.count; }
}
test Seed { Bounded b = new Bounded(2); }
"""

SAFE = """
class SafeBounded {
  IntArray data;
  int count;
  int capacity;
  SafeBounded(int capacity) {
    this.data = new IntArray(capacity);
    this.capacity = capacity;
    this.count = 0;
  }
  synchronized bool add(int v) {
    if (this.count == this.capacity) { return false; }
    this.data.set(this.count, v);
    this.count = this.count + 1;
    return true;
  }
  synchronized int size() { return this.count; }
}
test Seed { SafeBounded b = new SafeBounded(2); }
"""


class TestInterleavings:
    def test_counts_are_binomial(self):
        left = ["a", "b"]
        right = ["x", "y", "z"]
        merged = list(_interleavings(left, right))
        assert len(merged) == 10  # C(5, 2)

    def test_each_preserves_per_thread_order(self):
        left = [1, 2]
        right = [10, 20]
        for merged in _interleavings(left, right):
            assert merged.index(1) < merged.index(2)
            assert merged.index(10) < merged.index(20)
            assert sorted(merged) == [1, 2, 10, 20]

    def test_empty_sides(self):
        assert list(_interleavings([], [1])) == [[1]]
        assert list(_interleavings([1], [])) == [[1]]


class TestConTeGe:
    def test_finds_violation_in_unsafe_class(self):
        table = load(CRASHY)
        contege = ConTeGe(table, "Bounded", seed=3, stop_at_first=True)
        result = contege.run(max_tests=400)
        assert result.violation_count >= 1
        assert result.violations[0].fault_kind == "index-out-of-bounds"

    def test_no_violation_in_synchronized_class(self):
        table = load(SAFE)
        contege = ConTeGe(table, "SafeBounded", seed=3)
        result = contege.run(max_tests=150)
        assert result.violation_count == 0

    def test_sequentially_crashy_class_not_reported(self):
        # A class that crashes even in linearized runs must never be
        # reported: the oracle requires all linearizations to pass.
        source = """
        class AlwaysBoom {
          int x;
          void boom() { this.x = 1 / 0; }
        }
        test Seed { AlwaysBoom b = new AlwaysBoom(); }
        """
        table = load(source)
        result = ConTeGe(table, "AlwaysBoom", seed=0).run(max_tests=60)
        assert result.violation_count == 0

    def test_deterministic_given_seed(self):
        table = load(CRASHY)
        r1 = ConTeGe(table, "Bounded", seed=11).run(max_tests=120)
        r2 = ConTeGe(table, "Bounded", seed=11).run(max_tests=120)
        assert r1.tests_generated == r2.tests_generated
        assert r1.violation_count == r2.violation_count

    def test_paper_shape_wrappers_yield_nothing(self):
        # C1's wrapper serializes both suffixes on its own monitor, so
        # random generation cannot expose the inner races (§5).
        subject = get_subject("C1")
        table = subject.load()
        result = ConTeGe(table, subject.class_name, seed=5).run(max_tests=120)
        assert result.violation_count == 0
