"""Protocol hardening: slow-loris recv deadlines, torn/oversize/empty
frames, disconnect mid-response, and structured admission shedding.

These are the daemon-layer failure modes — a handler thread must never
be pinned by a hostile or broken client, and every shed path must
answer with a structured error frame a client can branch on.
"""

import socket
import struct
import threading
import time

import pytest

from repro.narada import ArtifactCache, DaemonClient, ReproDaemon
from repro.narada.daemon import (
    MAX_FRAME_BYTES,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.narada.serial import ERROR_CODES, encode_error_frame


@pytest.fixture
def daemon(tmp_path):
    """Hardened in-process daemon: tight recv deadline, tiny queue."""
    d = ReproDaemon(
        socket_path=str(tmp_path / "daemon.sock"),
        jobs=1,
        cache=ArtifactCache(tmp_path / "cache"),
        max_queue_depth=2,
        recv_timeout_s=1.0,
    )
    d.bind()
    server = threading.Thread(target=d.serve_forever, daemon=True)
    server.start()
    yield d
    d.initiate_drain()
    server.join(timeout=30)
    assert not server.is_alive()


def _raw_connect(d: ReproDaemon) -> socket.socket:
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(d.socket_path)
    return sock


class TestErrorFrameCodec:
    def test_shape(self):
        frame = encode_error_frame("busy", "queue full", retry_after_s=1.2345)
        assert frame["ok"] is False
        assert frame["kind"] == "error"
        assert frame["error_code"] == "busy"
        assert frame["error"] == "queue full"
        assert frame["retry_after_s"] == 1.234

    def test_no_retry_hint_key_when_absent(self):
        frame = encode_error_frame("protocol", "torn frame")
        assert "retry_after_s" not in frame

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            encode_error_frame("nope", "x")

    def test_codes_sorted_and_stable(self):
        assert list(ERROR_CODES) == sorted(ERROR_CODES)


class TestRecvDeadline:
    def test_slow_loris_partial_prefix_torn_down(self, daemon):
        """A partial length prefix must not pin the handler forever."""
        with _raw_connect(daemon) as sock:
            sock.sendall(b"\x00")  # 1 of 4 header bytes, then stall
            sock.settimeout(10.0)
            frame = recv_frame(sock)
            assert frame["ok"] is False
            assert frame["error_code"] == "protocol"
            assert "deadline" in frame["error"]
            # The daemon closes the connection after the error frame.
            assert sock.recv(1) == b""
        assert daemon.stats.protocol_errors == 1

    def test_slow_loris_partial_body_torn_down(self, daemon):
        with _raw_connect(daemon) as sock:
            sock.sendall(struct.pack(">I", 64) + b'{"op":')  # stall mid-body
            sock.settimeout(10.0)
            frame = recv_frame(sock)
            assert frame["error_code"] == "protocol"

    def test_recv_frame_without_timeout_unchanged(self):
        """Client-side recv_frame (no deadline) still blocks mid-frame."""
        a, b = socket.socketpair()
        with a, b:
            b.settimeout(0.05)
            payload = b'{"x":1}'
            a.sendall(struct.pack(">I", len(payload)))

            def finish():
                time.sleep(0.2)  # several client-side poll timeouts
                a.sendall(payload)

            t = threading.Thread(target=finish)
            t.start()
            try:
                assert recv_frame(b) == {"x": 1}
            finally:
                t.join()


class TestFrameEdgeCases:
    def test_oversize_frame_gets_structured_error(self, daemon):
        with _raw_connect(daemon) as sock:
            sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            sock.settimeout(10.0)
            frame = recv_frame(sock)
            assert frame["ok"] is False
            assert frame["error_code"] == "protocol"
            assert "exceeds limit" in frame["error"]

    def test_empty_payload_is_protocol_error(self, daemon):
        with _raw_connect(daemon) as sock:
            sock.sendall(struct.pack(">I", 0))
            sock.settimeout(10.0)
            frame = recv_frame(sock)
            assert frame["error_code"] == "protocol"
            assert "undecodable" in frame["error"]

    def test_non_object_payload_is_protocol_error(self, daemon):
        with _raw_connect(daemon) as sock:
            payload = b"[1,2,3]"
            sock.sendall(struct.pack(">I", len(payload)) + payload)
            sock.settimeout(10.0)
            frame = recv_frame(sock)
            assert frame["error_code"] == "protocol"

    def test_torn_frame_eof_counts_protocol_error(self, daemon):
        before = daemon.stats.protocol_errors
        sock = _raw_connect(daemon)
        sock.sendall(struct.pack(">I", 100) + b"partial")
        sock.close()  # EOF mid-frame
        deadline = time.monotonic() + 10
        while (
            daemon.stats.protocol_errors == before
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        assert daemon.stats.protocol_errors == before + 1

    def test_disconnect_mid_response_leaves_daemon_serving(self, daemon):
        """A client vanishing before reading its response hurts nobody."""
        sock = _raw_connect(daemon)
        send_frame(sock, {"op": "ping"})
        sock.close()  # gone before the response lands
        with DaemonClient(socket_path=daemon.socket_path) as client:
            response = client.request({"op": "ping"})
            assert response["ok"] is True


class TestAdmissionShedding:
    def test_queue_full_sheds_busy_with_retry_hint(self, daemon):
        """Clients beyond the queue bound get `busy`, never a hang."""
        holders = [DaemonClient(socket_path=daemon.socket_path) for _ in range(2)]
        results: list[dict] = []

        def park(client, seconds):
            results.append(client.request({"op": "sleep", "seconds": seconds}))

        threads = [
            threading.Thread(target=park, args=(c, 1.0)) for c in holders
        ]
        for t in threads:
            t.start()
        # Wait until both requests occupy the admission queue (one
        # running, one waiting on the run lock).
        deadline = time.monotonic() + 10
        while daemon.admission.occupancy < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert daemon.admission.occupancy == 2
        with DaemonClient(socket_path=daemon.socket_path) as extra:
            shed = extra.request({"op": "sleep", "seconds": 0.1})
        assert shed["ok"] is False
        assert shed["error_code"] == "busy"
        assert shed["retry_after_s"] > 0
        for t in threads:
            t.join()
        for c in holders:
            c.close()
        assert all(r["ok"] for r in results)
        assert daemon.admission.shed_busy == 1

    def test_deadline_exceeded_while_queued(self, daemon):
        with DaemonClient(socket_path=daemon.socket_path) as holder:
            result: list[dict] = []
            t = threading.Thread(
                target=lambda: result.append(
                    holder.request({"op": "sleep", "seconds": 1.0})
                )
            )
            t.start()
            deadline = time.monotonic() + 10
            while (
                daemon.admission.occupancy < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            with DaemonClient(socket_path=daemon.socket_path) as hurried:
                shed = hurried.request(
                    {"op": "sleep", "seconds": 0.1, "deadline_s": 0.05}
                )
            t.join()
        assert shed["ok"] is False
        assert shed["error_code"] == "deadline_exceeded"
        assert result[0]["ok"] is True
        assert daemon.admission.deadlines_exceeded == 1

    def test_deadline_cancels_running_request(self, daemon):
        """A deadline mid-run cancels at the next check, not at the end."""
        started = time.monotonic()
        with DaemonClient(socket_path=daemon.socket_path) as client:
            response = client.request(
                {"op": "sleep", "seconds": 30.0, "deadline_s": 0.2}
            )
        elapsed = time.monotonic() - started
        assert response["ok"] is False
        assert response["error_code"] == "deadline_exceeded"
        assert elapsed < 10  # nowhere near the 30s sleep

    def test_draining_daemon_sheds_structured(self, tmp_path):
        # Unserved instance: toggling the live daemon's drain flag would
        # race its accept loop into a real shutdown.
        d = ReproDaemon(socket_path=str(tmp_path / "x.sock"), jobs=1)
        d._draining.set()
        response = d.handle_request({"op": "sleep", "seconds": 0.1})
        assert response["ok"] is False
        assert response["error_code"] == "draining"
        assert d.admission.shed_draining == 1

    def test_stats_reports_admission_section(self, daemon):
        with DaemonClient(socket_path=daemon.socket_path) as client:
            stats = client.request({"op": "stats"})
        assert stats["admission"]["max_queue_depth"] == 2
        assert stats["totals"]["protocol_errors"] == 0
        assert stats["governor"] is None
