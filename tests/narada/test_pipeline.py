"""Tests for the end-to-end Narada pipeline object."""

import pytest

from repro.narada import Narada
from repro.subjects import get_subject


@pytest.fixture(scope="module")
def c1():
    subject = get_subject("C1")
    narada = Narada(subject.load())
    report = narada.synthesize_for_class(subject.class_name)
    return subject, narada, report


class TestSynthesisReport:
    def test_counts_consistent(self, c1):
        _, _, report = c1
        assert report.pair_count == len(report.pairs)
        assert report.test_count == len(report.tests)
        assert len(report.plans) == report.pair_count

    def test_tests_cover_all_pairs(self, c1):
        _, _, report = c1
        covered = sum(len(t.covered_pairs) for t in report.tests)
        assert covered == report.pair_count

    def test_method_count_and_loc(self, c1):
        subject, _, report = c1
        assert report.method_count == 14
        assert report.loc > 0

    def test_accepts_source_string(self):
        narada = Narada(
            "class A { int x; void m() { this.x = this.x + 1; } }"
            " test T { A a = new A(); a.m(); }"
        )
        report = narada.synthesize_for_class("A")
        assert report.pair_count >= 1

    def test_seed_suite_cached(self, c1):
        _, narada, _ = c1
        first = narada.run_seed_suite()
        second = narada.run_seed_suite()
        assert first is second

    def test_synthesize_all_covers_seeded_classes(self):
        subject = get_subject("C7")
        narada = Narada(subject.load())
        reports = narada.synthesize_all()
        classes = {r.class_name for r in reports}
        assert "PooledExecutorWithInvalidate" in classes
        assert "Task" in classes  # helper class also exercised by seeds


class TestDetectionReport:
    def test_detect_c7_finds_harmful_races(self):
        subject = get_subject("C7")
        narada = Narada(subject.load())
        report = narada.synthesize_for_class(subject.class_name)
        detection = narada.detect(report, random_runs=4)
        assert detection.detected >= 1
        assert detection.harmful >= 1
        assert detection.reproduced <= detection.detected
        assert detection.harmful + detection.benign == detection.reproduced

    def test_manual_columns_partition_unreproduced(self):
        subject = get_subject("C7")
        narada = Narada(subject.load())
        report = narada.synthesize_for_class(subject.class_name)
        detection = narada.detect(report, random_runs=4)
        assert (
            detection.manual_tp + detection.manual_fp
            == detection.detected - detection.reproduced
        )

    def test_races_per_test_matches_test_count(self):
        subject = get_subject("C8")
        narada = Narada(subject.load())
        report = narada.synthesize_for_class(subject.class_name)
        detection = narada.detect(report, random_runs=3)
        # Statically pruned tests are skipped, not fuzzed: the fuzz
        # report list plus the skip counter covers every test.
        assert (
            len(detection.races_per_test()) + detection.pruned_tests
            == report.test_count
        )
