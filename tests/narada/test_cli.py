"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main

COUNTER_SRC = """
class Counter {
  int count;
  void inc() { int t = this.count; this.count = t + 1; }
  int get() { return this.count; }
}
test Seed { Counter c = new Counter(); c.inc(); int n = c.get(); }
"""


@pytest.fixture()
def counter_file(tmp_path):
    path = tmp_path / "counter.minij"
    path.write_text(COUNTER_SRC)
    return str(path)


class TestSubjectsCommand:
    def test_lists_nine_subjects(self, capsys):
        assert main(["subjects"]) == 0
        out = capsys.readouterr().out
        for key in [f"C{i}" for i in range(1, 10)]:
            assert f"{key}:" in out

    def test_json_output(self, capsys):
        assert main(["subjects", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 9
        assert rows[0]["key"] == "C1"


class TestAnalyzeCommand:
    def test_analyze_file(self, capsys, counter_file):
        assert main(["analyze", counter_file]) == 0
        out = capsys.readouterr().out
        assert "Counter.inc" in out
        assert "unprot" in out

    def test_analyze_json(self, capsys, counter_file):
        assert main(["analyze", counter_file, "--json"]) == 0
        summaries = json.loads(capsys.readouterr().out)
        methods = {s["method"] for s in summaries}
        assert {"inc", "get"} <= methods

    def test_analyze_subject(self, capsys):
        assert main(["analyze", "--subject", "C9"]) == 0
        assert "CharArrayReader" in capsys.readouterr().out


class TestPairsCommand:
    def test_pairs_file(self, capsys, counter_file):
        assert main(["pairs", counter_file]) == 0
        out = capsys.readouterr().out
        assert "Counter.count" in out
        assert "racing pair(s)" in out

    def test_pairs_json(self, capsys, counter_file):
        assert main(["pairs", counter_file, "--json"]) == 0
        pairs = json.loads(capsys.readouterr().out)
        assert pairs
        assert all(p["field"] == "Counter.count" for p in pairs)


class TestSynthCommand:
    def test_synth_renders_tests(self, capsys, counter_file):
        assert main(["synth", counter_file]) == 0
        out = capsys.readouterr().out
        assert "Thread t1" in out
        assert "t1.start(); t2.start();" in out

    def test_synth_json(self, capsys, counter_file):
        assert main(["synth", counter_file, "--json", "--all"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["class"] == "Counter"
        assert data["tests"] == len(data["rendered"])


class TestFuzzCommand:
    def test_fuzz_finds_counter_race(self, capsys, counter_file):
        assert main(["fuzz", counter_file, "--runs", "3"]) == 0
        out = capsys.readouterr().out
        assert "race(s) detected" in out
        assert "harmful" in out

    def test_fuzz_json(self, capsys, counter_file):
        assert main(["fuzz", counter_file, "--runs", "3", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["detected"] >= 1
        assert data["harmful"] >= 1


class TestPipelineFlags:
    def test_fuzz_jobs_matches_serial(self, capsys, counter_file):
        assert main(["fuzz", counter_file, "--runs", "3", "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert (
            main(
                ["fuzz", counter_file, "--runs", "3", "--json", "--jobs", "2"]
            )
            == 0
        )
        parallel = json.loads(capsys.readouterr().out)
        assert parallel == serial

    def test_no_cache_skips_cache_dir(self, capsys, counter_file, tmp_path):
        cache_dir = tmp_path / "cli-cache"
        assert (
            main(
                [
                    "fuzz",
                    counter_file,
                    "--runs",
                    "2",
                    "--no-cache",
                    "--cache-dir",
                    str(cache_dir),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert not cache_dir.exists()

    def test_cache_dir_populated_and_reused(self, capsys, counter_file, tmp_path):
        cache_dir = tmp_path / "cli-cache"
        args = [
            "fuzz",
            counter_file,
            "--runs",
            "2",
            "--json",
            "--cache-dir",
            str(cache_dir),
        ]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert list(cache_dir.rglob("*.json"))
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second == first


class TestChessCommand:
    def test_chess_exhausts_and_certifies(self, capsys, counter_file):
        assert main(["chess", counter_file, "--tests", "2"]) == 0
        out = capsys.readouterr().out
        assert "exhausted" in out
        assert "certificate=" in out


class TestConTeGeCommand:
    def test_contege_runs(self, capsys, counter_file):
        assert main(["contege", counter_file, "--budget", "30"]) == 0
        out = capsys.readouterr().out
        assert "random tests" in out


class TestErrors:
    def test_missing_target(self):
        with pytest.raises(SystemExit):
            main(["pairs"])

    def test_ambiguous_class(self, tmp_path):
        path = tmp_path / "two.minij"
        path.write_text("class A { } class B { } test T { A a = new A(); }")
        with pytest.raises(SystemExit):
            main(["pairs", str(path)])
