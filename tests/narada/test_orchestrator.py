"""Orchestrator, artifact cache, and determinism-contract tests."""

import json

import pytest

from repro.lang import load
from repro.lang.pretty import pretty_program
from repro.narada import (
    ArtifactCache,
    Narada,
    PipelineConfig,
    PipelineOrchestrator,
    subject_specs,
    table_digest,
)
from repro.narada.cache import stage_key
from repro.narada.pipeline import DetectionReport
from repro.narada.serial import report_digest
from repro.subjects import all_subjects, get_subject

#: Small, fast subjects — enough to cross the pool boundary for real.
#: C2 is included deliberately: its directed phase once diverged between
#: a freshly-synthesized test and its serialized round trip (set
#: iteration order leaking into attempt order).
FAST = ["C2", "C7", "C8"]

CONFIG = PipelineConfig(random_runs=2)


def _specs():
    return subject_specs([get_subject(k) for k in FAST])


def _digests(outcomes):
    return {o.spec.name: o.digest() for o in outcomes}


class TestDeterminism:
    """Reports must be byte-identical for jobs=1 / jobs=2 / warm cache."""

    def test_serial_parallel_and_warm_agree(self, tmp_path):
        specs = _specs()
        with PipelineOrchestrator(jobs=1, config=CONFIG) as orch:
            serial = _digests(orch.run(specs))

        cache = ArtifactCache(tmp_path / "cache")
        with PipelineOrchestrator(jobs=2, cache=cache, config=CONFIG) as orch:
            parallel = _digests(orch.run(specs))
        assert parallel == serial

        with PipelineOrchestrator(jobs=2, cache=cache, config=CONFIG) as orch:
            warm_outcomes = orch.run(specs)
        assert _digests(warm_outcomes) == serial
        assert all(o.synthesis_cached for o in warm_outcomes)
        assert all(o.detection_cached for o in warm_outcomes)

    def test_jobs_one_never_creates_a_pool(self):
        with PipelineOrchestrator(jobs=1, config=CONFIG) as orch:
            orch.run(_specs()[:1])
            assert orch._pool is None

    def test_report_dicts_roundtrip_stably(self):
        from repro.narada.serial import (
            decode_detection,
            decode_synthesis,
            encode_detection,
            encode_synthesis,
        )

        with PipelineOrchestrator(jobs=1, config=CONFIG) as orch:
            outcome = orch.run(_specs()[:1])[0]
        synth = outcome.synthesis_dict
        assert encode_synthesis(decode_synthesis(synth)) == synth
        det = outcome.detection_dict
        assert encode_detection(decode_detection(det)) == det

    def test_pretty_roundtrip_is_node_id_stable(self):
        # The cache keys rely on pretty-printed text being a canonical
        # form: reparsing it must reproduce every static site id.
        for subject in all_subjects():
            table = load(subject.source)
            text = pretty_program(table.program)
            assert pretty_program(load(text).program) == text
            assert table_digest(text) == table_digest(subject.source)


class TestStageInvalidation:
    def test_detection_config_does_not_invalidate_synthesis(self, tmp_path):
        spec = _specs()[0]
        cache = ArtifactCache(tmp_path / "cache")
        with PipelineOrchestrator(jobs=1, cache=cache, config=CONFIG) as orch:
            orch.run([spec])
        more_runs = PipelineConfig(random_runs=3)
        with PipelineOrchestrator(
            jobs=1, cache=cache, config=more_runs
        ) as orch:
            outcome = orch.run([spec])[0]
        # Synthesis replays from cache; detection recomputes.
        assert outcome.synthesis_cached
        assert not outcome.detection_cached

    def test_source_change_invalidates_everything(self, tmp_path):
        spec = _specs()[0]
        changed = spec.source.replace("0", "1", 1)
        assert table_digest(changed) != table_digest(spec.source)


class TestArtifactCache:
    def test_put_then_get(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("synthesis", "ab" * 32, {"x": 1})
        assert cache.get("synthesis", "ab" * 32) == {"x": 1}
        assert cache.stats.hits == 1
        assert cache.stats.writes == 1

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get("synthesis", "cd" * 32) is None
        assert cache.stats.misses == 1

    def test_truncated_entry_is_a_miss_not_an_error(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = "ef" * 32
        cache.put("detection", key, {"kind": "detection", "n": 2})
        path = cache._path("detection", key)
        path.write_text(path.read_text()[:7])  # simulate a torn write
        assert cache.get("detection", key) is None
        assert cache.stats.evictions == 1
        assert not path.exists()  # evicted
        # And the pipeline recomputes cleanly through the same cache.
        spec = _specs()[0]
        with PipelineOrchestrator(jobs=1, cache=cache, config=CONFIG) as orch:
            outcome = orch.run([spec])[0]
        assert outcome.synthesis.test_count > 0

    def test_non_object_entry_is_evicted(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = "0a" * 32
        path = cache._path("analysis", key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps([1, 2, 3]))
        assert cache.get("analysis", key) is None
        assert not path.exists()

    def test_writes_leave_no_temp_files(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(4):
            cache.put("synthesis", f"{i:02d}" * 32, {"i": i})
        leftovers = [p for p in tmp_path.rglob(".tmp-*")]
        assert leftovers == []

    def test_corrupt_entry_during_pipeline_run(self, tmp_path):
        """A cached stage artifact that rots on disk must recompute to
        the same result, not crash."""
        spec = _specs()[0]
        cache = ArtifactCache(tmp_path / "cache")
        with PipelineOrchestrator(jobs=1, cache=cache, config=CONFIG) as orch:
            first = orch.run([spec])[0].digest()
        key = stage_key(
            table_digest(spec.source),
            "synthesis",
            CONFIG.synthesis_config(spec.target_class),
        )
        path = cache._path("synthesis", key)
        assert path.exists()
        path.write_text("{" + path.read_text()[1:40])
        with PipelineOrchestrator(jobs=1, cache=cache, config=CONFIG) as orch:
            again = orch.run([spec])[0]
        assert again.digest() == first
        assert not again.synthesis_cached
        assert again.detection_cached  # detection entry was untouched


class TestUnionRecordsMemo:
    """DetectionReport memoizes its union; `add` is the invalidation point."""

    def _fuzz(self, narada, report, index):
        from repro.fuzz import RaceFuzzer

        fuzzer = RaceFuzzer(narada.table, random_runs=2)
        return fuzzer.fuzz(report.tests[index])

    def test_property_stable_after_add(self):
        subject = get_subject("C7")
        narada = Narada(subject.source)
        synthesis = narada.synthesize_for_class(subject.class_name)
        assert len(synthesis.tests) >= 2
        detection = DetectionReport(class_name=subject.class_name)
        detection.add(self._fuzz(narada, synthesis, 0))
        before = detection.detected
        # Memo is populated; repeated access returns the same object.
        assert detection._union_records() is detection._union_records()
        detection.add(self._fuzz(narada, synthesis, 1))
        after = detection.detected
        assert after >= before
        # Mutating through add() invalidated the memo: the fresh union
        # covers both fuzz reports.
        merged = detection._union_records()
        keys = {r.static_key() for rep in detection.fuzz_reports
                for r in rep.detected}
        assert set(merged) == keys

    def test_explicit_invalidate(self):
        subject = get_subject("C8")
        narada = Narada(subject.source)
        synthesis = narada.synthesize_for_class(subject.class_name)
        detection = DetectionReport(class_name=subject.class_name)
        detection.add(self._fuzz(narada, synthesis, 0))
        memo = detection._union_records()
        # Out-of-band mutation (not via add) requires invalidate().
        detection.fuzz_reports.append(self._fuzz(narada, synthesis, 1))
        assert detection._union_records() is memo  # stale by contract
        detection.invalidate()
        assert detection._union_records() is not memo


class TestScheduleSeed:
    def test_seed_depends_on_test_and_run_only(self):
        from repro.fuzz.racefuzzer import schedule_seed

        assert schedule_seed("t1", 0) == schedule_seed("t1", 0)
        assert schedule_seed("t1", 0) != schedule_seed("t1", 1)
        assert schedule_seed("t1", 0) != schedule_seed("t2", 0)


class TestNaradaParallelApi:
    def test_synthesize_all_jobs_matches_serial(self):
        subject = get_subject("C8")
        narada = Narada(subject.source)
        serial = [report_digest(r.to_dict()) for r in narada.synthesize_all()]
        fresh = Narada(subject.source)
        parallel = [
            report_digest(r.to_dict()) for r in fresh.synthesize_all(jobs=2)
        ]
        assert parallel == serial

    def test_detect_jobs_matches_serial(self):
        subject = get_subject("C9")
        narada = Narada(subject.source)
        report = narada.synthesize_for_class(subject.class_name)
        serial = narada.detect(report, random_runs=2).to_dict()
        parallel = narada.detect(report, random_runs=2, jobs=2).to_dict()
        assert parallel == serial


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
