"""Fault-tolerance layer tests: injection, isolation, watchdog, retry,
cache quarantine, and checkpointed resume.

The bit-identity contract under test throughout: a run that survived
crashes, hangs, or retries produces byte-identical reports to a clean
run (work units are pure functions of content, so a retry recomputes
the same thing).
"""

import json
import os
import time

import pytest

from repro.narada import (
    ArtifactCache,
    PipelineConfig,
    PipelineOrchestrator,
    subject_specs,
)
from repro.narada import orchestrator as orch_mod
from repro.narada.cache import stage_key, table_digest
from repro.narada.faults import (
    FaultInjector,
    FaultLedger,
    FaultPlan,
    InjectedCrash,
    RunLedger,
    UnitFailure,
    UnitTimeout,
    _draw,
    watchdog,
)
from repro.narada.serial import decode_fault_ledger, encode_fault_ledger
from repro.subjects import get_subject

SUBJECT = "C8"

#: Zero backoff keeps the retry-heavy tests fast; two runs is enough
#: fuzzing to produce non-trivial detection reports on C8.
CONFIG = PipelineConfig(random_runs=2, retry_backoff=0.0)


def _spec():
    return subject_specs([get_subject(SUBJECT)])[0]


def _config(**overrides):
    base = CONFIG.to_dict()
    base.update(overrides)
    return PipelineConfig.from_dict(base)


@pytest.fixture(scope="module")
def clean_digest():
    """Digest of a clean, fault-free, cache-free inline run."""
    with PipelineOrchestrator(jobs=1, config=CONFIG) as orch:
        outcome = orch.run([_spec()])[0]
    assert orch.fault_ledger.ok()
    return outcome.digest()


# Deterministic fault wrappers.  Module-level so the pool can pickle
# them by reference (workers are forked after monkeypatching, so the
# patched module state is visible on both sides of the pipe).

_REAL_SYNTH_WORKER = orch_mod._synthesize_worker


def _crash_first_attempt_synth(
    source, target_class, config, cache_root, unit_key="", attempt=0
):
    if attempt == 0:
        os._exit(13)  # a real worker death, not an exception
    return _REAL_SYNTH_WORKER(
        source, target_class, config, cache_root, unit_key, attempt
    )


def _hang_first_attempt_synth(
    source, target_class, config, cache_root, unit_key="", attempt=0
):
    if attempt == 0:
        time.sleep(60)
    return _REAL_SYNTH_WORKER(
        source, target_class, config, cache_root, unit_key, attempt
    )


class TestFaultPlan:
    def test_parse_and_roundtrip(self):
        plan = FaultPlan.parse("crash:0.3, hang:0.1")
        assert plan == FaultPlan(crash=0.3, hang=0.1)
        assert FaultPlan.parse(plan.to_spec()) == plan
        assert plan.active()
        assert not FaultPlan().active()

    def test_unknown_kind_is_an_error(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("crash:0.3,explode:1.0")

    def test_bad_rate_is_an_error(self):
        with pytest.raises(ValueError, match="bad fault-inject entry"):
            FaultPlan.parse("crash:lots")

    def test_draws_are_deterministic_and_keyed(self):
        assert _draw("crash", "k1", 0) == _draw("crash", "k1", 0)
        assert _draw("crash", "k1", 0) != _draw("crash", "k1", 1)
        assert _draw("crash", "k1", 0) != _draw("hang", "k1", 0)
        assert _draw("crash", "k1", 0) != _draw("crash", "k2", 0)
        assert 0.0 <= _draw("crash", "k1", 0) < 1.0


class TestFaultInjector:
    def test_no_spec_no_env_means_no_injector(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
        assert FaultInjector.from_spec(None) is None
        assert FaultInjector.from_spec("crash:0.0") is None

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "hang:0.2")
        injector = FaultInjector.from_spec(None, unit_timeout=2.0)
        assert injector is not None
        assert injector.plan.hang == 0.2
        # The injected hang must outlive the watchdog deadline.
        assert injector.hang_seconds == pytest.approx(6.0)

    def test_inline_crash_raises(self):
        injector = FaultInjector.from_spec("crash:1.0")
        with pytest.raises(InjectedCrash):
            injector.before_unit("some-unit", 0, in_worker=False)

    def test_corrupt_draw(self):
        injector = FaultInjector.from_spec("corrupt:1.0")
        assert injector.corrupt_write("any-key")
        assert not FaultInjector.from_spec("crash:1.0").corrupt_write("k")


class TestCacheQuarantine:
    def test_garbage_bytes_are_quarantined_with_reason(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = "ab" * 32
        cache.put("synthesis", key, {"kind": "synthesis", "x": 1})
        cache._path("synthesis", key).write_bytes(b"\x00\xffnot json{{{")
        assert cache.get("synthesis", key) is None
        assert cache.stats.quarantined == 1
        moved = tmp_path / "quarantine" / "synthesis" / f"{key}.json"
        reason = tmp_path / "quarantine" / "synthesis" / f"{key}.reason.txt"
        assert moved.exists()
        assert "unreadable entry" in reason.read_text()
        assert not cache._path("synthesis", key).exists()
        # And the next get is a plain miss, not a repeat quarantine.
        assert cache.get("synthesis", key) is None
        assert cache.stats.quarantined == 1

    def test_schema_stale_entry_is_quarantined(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = "cd" * 32
        cache.put("detection", key, {"kind": "detection", "version": 999})
        assert cache.get("detection", key) is None
        reason = tmp_path / "quarantine" / "detection" / f"{key}.reason.txt"
        assert "schema-stale" in reason.read_text()

    def test_undecodable_entry_recomputes_to_clean_result(
        self, tmp_path, clean_digest
    ):
        """A structurally-valid JSON object that fails to *decode* is
        quarantined by the orchestrator and recomputed."""
        spec = _spec()
        cache = ArtifactCache(tmp_path / "cache")
        key = stage_key(
            table_digest(spec.source),
            "synthesis",
            CONFIG.synthesis_config(spec.target_class),
        )
        cache.put("synthesis", key, {"kind": "synthesis", "bogus": True})
        with PipelineOrchestrator(jobs=1, cache=cache, config=CONFIG) as orch:
            outcome = orch.run([spec])[0]
        assert outcome.digest() == clean_digest
        assert not outcome.synthesis_cached
        assert orch.fault_ledger.quarantined >= 1
        assert cache.stats.quarantined >= 1

    def test_injected_torn_writes_quarantine_then_recompute(
        self, tmp_path, clean_digest
    ):
        """corrupt:1.0 tears every published entry; the next run must
        quarantine them all and still converge to the clean digest."""
        spec = _spec()
        root = tmp_path / "cache"
        torn = _config(fault_inject="corrupt:1.0")
        with PipelineOrchestrator(
            jobs=1, cache=ArtifactCache(root), config=torn
        ) as orch:
            assert orch.run([spec])[0].digest() == clean_digest
        cache = ArtifactCache(root)
        with PipelineOrchestrator(jobs=1, cache=cache, config=CONFIG) as orch:
            outcome = orch.run([spec])[0]
        assert outcome.digest() == clean_digest
        assert cache.stats.quarantined > 0
        reasons = list((root / "quarantine").rglob("*.reason.txt"))
        assert reasons


class TestCrashIsolation:
    def test_worker_crash_mid_synthesis_phase_is_retried(
        self, monkeypatch, clean_digest
    ):
        """A worker that dies mid-unit is blamed on exactly that unit;
        the pool respawns and the retry converges bit-identically."""
        monkeypatch.setattr(
            orch_mod, "_synthesize_worker", _crash_first_attempt_synth
        )
        with PipelineOrchestrator(jobs=2, config=CONFIG) as orch:
            outcome = orch.run([_spec()])[0]
            ledger = orch.fault_ledger
        assert ledger.ok()
        assert ledger.pool_respawns >= 1
        assert ledger.retries >= 1
        assert outcome.digest() == clean_digest

    def test_probabilistic_crash_injection_converges(self, clean_digest):
        """The real --fault-inject path: injected worker deaths across
        both phases, generous retries, bit-identical results."""
        config = _config(fault_inject="crash:0.5", max_retries=12)
        with PipelineOrchestrator(jobs=2, config=config) as orch:
            outcome = orch.run([_spec()])[0]
            ledger = orch.fault_ledger
        assert ledger.ok(), [f.error for f in ledger.failures]
        assert ledger.retries > 0
        assert ledger.pool_respawns > 0
        assert outcome.digest() == clean_digest

    def test_inline_injected_crashes_converge(self, clean_digest):
        config = _config(fault_inject="crash:0.5", max_retries=12)
        with PipelineOrchestrator(jobs=1, config=config) as orch:
            outcome = orch.run([_spec()])[0]
            ledger = orch.fault_ledger
        assert orch._pool is None  # inline mode really stayed inline
        assert ledger.ok()
        assert ledger.retries > 0
        assert ledger.pool_respawns == 0
        assert outcome.digest() == clean_digest


class TestWatchdog:
    def test_inline_watchdog_raises_unit_timeout(self):
        with pytest.raises(UnitTimeout):
            with watchdog(0.2):
                time.sleep(5)

    def test_inline_watchdog_noop_without_deadline(self):
        with watchdog(None):
            pass

    def test_pooled_hung_unit_is_killed_and_retried(
        self, monkeypatch, clean_digest
    ):
        monkeypatch.setattr(
            orch_mod, "_synthesize_worker", _hang_first_attempt_synth
        )
        config = _config(unit_timeout=2.0)
        with PipelineOrchestrator(jobs=2, config=config) as orch:
            outcome = orch.run([_spec()], detect=False)[0]
            ledger = orch.fault_ledger
        assert ledger.ok()
        assert ledger.timeouts >= 1
        assert ledger.pool_respawns >= 1
        assert outcome.digest() == clean_digest.split("/")[0]

    def test_inline_hung_unit_hits_sigalrm_watchdog(
        self, monkeypatch, clean_digest
    ):
        calls = {"n": 0}
        real = orch_mod._fuzz_unit

        def hang_once(table, test, config, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                time.sleep(60)
            return real(table, test, config, **kwargs)

        monkeypatch.setattr(orch_mod, "_fuzz_unit", hang_once)
        config = _config(unit_timeout=1.0)
        with PipelineOrchestrator(jobs=1, config=config) as orch:
            outcome = orch.run([_spec()])[0]
            ledger = orch.fault_ledger
        assert ledger.ok()
        assert ledger.timeouts >= 1
        assert outcome.digest() == clean_digest


class TestGracefulDegradation:
    def test_permanent_fuzz_failure_yields_partial_detection(
        self, monkeypatch, tmp_path, clean_digest
    ):
        """One test that always fails leaves a partial detection report
        carrying every other test's results — and the partial subject
        artifact is never cached, so a later clean run heals it."""
        real = orch_mod._fuzz_unit
        poisoned = {"name": None}

        def fail_one(table, test, config, **kwargs):
            if poisoned["name"] is None:
                poisoned["name"] = test.name
            if test.name == poisoned["name"]:
                raise RuntimeError("poisoned unit")
            return real(table, test, config, **kwargs)

        monkeypatch.setattr(orch_mod, "_fuzz_unit", fail_one)
        cache = ArtifactCache(tmp_path / "cache")
        config = _config(max_retries=1)
        with PipelineOrchestrator(jobs=1, cache=cache, config=config) as orch:
            outcome = orch.run([_spec()])[0]
            ledger = orch.fault_ledger
        assert outcome.detection_partial
        assert not ledger.ok()
        assert len(outcome.failures) == 1
        failure = outcome.failures[0]
        assert failure.stage == "fuzz"
        assert failure.subject == SUBJECT
        assert failure.attempts == 2  # initial try + one retry
        assert "poisoned unit" in failure.error
        assert "RuntimeError" in failure.trace
        assert (
            len(outcome.detection.fuzz_reports)
            == len(outcome.synthesis.tests) - 1
        )
        assert failure.unit in ledger.describe()

        # The healing run: cached fuzzunit artifacts replay, only the
        # poisoned unit recomputes, and the digest matches clean.
        monkeypatch.setattr(orch_mod, "_fuzz_unit", real)
        with PipelineOrchestrator(jobs=1, cache=cache, config=CONFIG) as orch:
            healed = orch.run([_spec()])[0]
        assert orch.fault_ledger.ok()
        assert not healed.detection_partial
        assert healed.digest() == clean_digest
        assert orch.fault_ledger.completed == 1  # just the healed unit

    def test_permanent_synthesis_failure_leaves_other_subjects_intact(
        self, monkeypatch
    ):
        calls = {"n": 0}
        real = orch_mod._synthesize_unit

        def fail_first(source, target_class, config, cache_root):
            calls["n"] += 1
            if calls["n"] <= 2:  # initial try + the single retry
                raise RuntimeError("synthesis exploded")
            return real(source, target_class, config, cache_root)

        monkeypatch.setattr(orch_mod, "_synthesize_unit", fail_first)
        specs = subject_specs([get_subject("C8"), get_subject("C7")])
        config = _config(max_retries=1)
        with PipelineOrchestrator(jobs=1, config=config) as orch:
            outcomes = orch.run(specs)
            ledger = orch.fault_ledger
        assert outcomes[0].synthesis is None
        assert outcomes[0].detection is None
        assert outcomes[0].digest() == "failed"
        assert [f.stage for f in outcomes[0].failures] == ["synthesis"]
        assert outcomes[1].synthesis is not None
        assert outcomes[1].detection is not None
        assert not outcomes[1].failures
        assert len(ledger.failures) == 1

    def test_single_subject_api_raises_on_permanent_failure(
        self, monkeypatch
    ):
        from repro.narada import UnitExecutionError

        def always_fail(source, target_class, config, cache_root):
            raise RuntimeError("permanently broken")

        monkeypatch.setattr(orch_mod, "_synthesize_unit", always_fail)
        config = _config(max_retries=0)
        with PipelineOrchestrator(jobs=1, config=config) as orch:
            with pytest.raises(UnitExecutionError) as excinfo:
                orch.synthesize(_spec())
        assert excinfo.value.failure.stage == "synthesis"


class TestCheckpointedResume:
    def test_resume_skips_completed_units_after_kill(
        self, monkeypatch, tmp_path, clean_digest
    ):
        """Simulated kill (KeyboardInterrupt mid-detection) then
        --resume: journaled units replay, only unfinished work runs."""
        real = orch_mod._fuzz_unit
        calls = {"n": 0}

        def kill_after_three(table, test, config, **kwargs):
            calls["n"] += 1
            if calls["n"] > 3:
                raise KeyboardInterrupt
            return real(table, test, config, **kwargs)

        monkeypatch.setattr(orch_mod, "_fuzz_unit", kill_after_three)
        cache = ArtifactCache(tmp_path / "cache")
        with pytest.raises(KeyboardInterrupt):
            with PipelineOrchestrator(
                jobs=1, cache=cache, config=CONFIG
            ) as orch:
                orch.run([_spec()])
        journal_files = list((tmp_path / "cache" / "runs").glob("*.jsonl"))
        assert len(journal_files) == 1
        journaled = journal_files[0].read_text().splitlines()
        assert len(journaled) == 4  # synthesis + the three finished units

        monkeypatch.setattr(orch_mod, "_fuzz_unit", real)
        with PipelineOrchestrator(
            jobs=1, cache=cache, config=CONFIG, resume=True
        ) as orch:
            outcome = orch.run([_spec()])[0]
            ledger = orch.fault_ledger
        assert outcome.digest() == clean_digest
        assert ledger.ok()
        assert ledger.resumed == 4
        total_units = len(outcome.synthesis.tests) + 1
        assert ledger.completed == total_units - 4

    def test_resume_requires_a_cache(self):
        with pytest.raises(ValueError, match="resume requires"):
            PipelineOrchestrator(jobs=1, resume=True)

    def test_fresh_run_truncates_the_journal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        first = RunLedger(path)
        first.mark_done("k1", "fuzz", "C8")
        first.close()
        again = RunLedger(path)  # non-resume: starts over
        assert not again.has("k1")
        again.close()
        assert path.read_text() == ""

    def test_journal_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ledger = RunLedger(path)
        ledger.mark_done("k1", "synthesis", "C8")
        ledger.mark_done("k2", "fuzz", "C8")
        ledger.close()
        path.write_text(path.read_text() + '{"key": "k3", "sta')  # torn
        resumed = RunLedger(path, resume=True)
        assert resumed.has("k1") and resumed.has("k2")
        assert not resumed.has("k3")
        resumed.close()

    def test_mark_done_is_idempotent(self, tmp_path):
        ledger = RunLedger(tmp_path / "run.jsonl")
        ledger.mark_done("k1", "fuzz", "C8")
        ledger.mark_done("k1", "fuzz", "C8")
        ledger.close()
        lines = (tmp_path / "run.jsonl").read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0]) == {
            "key": "k1",
            "stage": "fuzz",
            "subject": "C8",
        }


class TestFaultLedgerSerialization:
    def test_roundtrip(self):
        ledger = FaultLedger(
            failures=[
                UnitFailure(
                    stage="fuzz",
                    subject="C3",
                    unit="LoggerRacy001",
                    error="WorkerCrash('died')",
                    trace="Traceback ...",
                    attempts=3,
                )
            ],
            completed=41,
            retries=5,
            pool_respawns=2,
            timeouts=1,
            quarantined=1,
            resumed=7,
        )
        data = encode_fault_ledger(ledger)
        back = decode_fault_ledger(data)
        assert encode_fault_ledger(back) == data
        assert back.failures[0].unit == "LoggerRacy001"
        assert not back.ok()

    def test_describe_mentions_counters_and_failures(self):
        ledger = FaultLedger(completed=3, retries=2)
        text = ledger.describe()
        assert "no failed units" in text
        assert "completed=3" in text and "retries=2" in text


class TestCliFlags:
    def test_pipeline_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "run",
                "--subjects", "C1,C8",
                "--fault-inject", "crash:0.3,hang:0.1",
                "--unit-timeout", "10",
                "--max-retries", "4",
                "--retry-backoff", "0.1",
                "--resume",
            ]
        )
        assert args.subjects == "C1,C8"
        assert args.fault_inject == "crash:0.3,hang:0.1"
        assert args.unit_timeout == 10.0
        assert args.max_retries == 4
        assert args.retry_backoff == 0.1
        assert args.resume

    def test_run_requires_file_or_subjects(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="MiniJ FILE or --subjects"):
            main(["run"])

    def test_resume_without_cache_is_an_error(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="resume requires"):
            main(["fuzz", "--subject", "C8", "--resume", "--no-cache"])

    def test_unknown_subject_key_is_an_error(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown subject"):
            main(["run", "--subjects", "C99"])


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
