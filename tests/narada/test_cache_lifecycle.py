"""Cache lifecycle: LRU byte budgets, the crash-safe atime journal,
quarantine GC, ENOSPC resilience, and the `repro cache` CLI."""

import json
import os
import time

from repro.cli import main as cli_main
from repro.narada import ArtifactCache, FaultInjector, FaultPlan
from repro.narada.cache import ATIME_JOURNAL


def _fill(cache: ArtifactCache, stage: str, count: int, payload_bytes: int = 200):
    """Write ``count`` entries with distinct keys; returns the keys."""
    keys = []
    for i in range(count):
        key = f"{i:02d}" + "a" * 62
        cache.put(stage, key, {"i": i, "pad": "x" * payload_bytes})
        keys.append(key)
    return keys


class TestLruEviction:
    def test_budget_evicts_oldest_first(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=100_000)
        keys = _fill(cache, "analysis", 6)
        entry_size = cache.total_bytes() // 6
        # Shrink the budget to roughly half the entries and evict.
        cache.evict(entry_size * 3)
        assert cache.total_bytes() <= entry_size * 3
        # The survivors are the most recently written entries.
        for key in keys[:3]:
            assert cache.get("analysis", key) is None
        cache.stats.misses = 0
        for key in keys[-2:]:
            assert cache.get("analysis", key) is not None
        assert cache.stats.misses == 0

    def test_get_refreshes_recency(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=100_000)
        keys = _fill(cache, "analysis", 4)
        entry_size = cache.total_bytes() // 4
        time.sleep(0.01)
        assert cache.get("analysis", keys[0]) is not None  # refresh oldest
        cache.evict(entry_size)
        # keys[0] was touched last, so it survives the cut to one entry.
        assert cache.get("analysis", keys[0]) is not None
        assert cache.get("analysis", keys[1]) is None

    def test_put_triggers_eviction_over_budget(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=1)  # absurdly tight
        _fill(cache, "analysis", 3)
        assert cache.stats.evictions > 0
        assert cache.entry_count() <= 1

    def test_unbudgeted_cache_never_evicts_or_journals(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        _fill(cache, "analysis", 3)
        assert cache.stats.evictions == 0
        assert not (tmp_path / ATIME_JOURNAL).exists()

    def test_quarantine_excluded_from_budget(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=100_000)
        keys = _fill(cache, "analysis", 3)
        live = cache.total_bytes()
        cache.quarantine("analysis", keys[0], "poisoned")
        assert cache.total_bytes() < live
        assert cache.quarantine_count() == 1


class TestAtimeJournal:
    def test_torn_trailing_line_tolerated(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=100_000)
        _fill(cache, "analysis", 3)
        journal = tmp_path / ATIME_JOURNAL
        with open(journal, "a") as handle:
            handle.write('{"k": "analysis/zz", "t": 1')  # crashed writer
        atimes = cache._load_atimes()
        assert len(atimes) == 3  # torn line skipped, not fatal
        assert cache.evict(0) == 3  # eviction still works

    def test_compaction_keeps_latest_per_key(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=100_000)
        keys = _fill(cache, "analysis", 2)
        for _ in range(5):
            cache.get("analysis", keys[0])
        cache._compact_journal()
        lines = (tmp_path / ATIME_JOURNAL).read_text().splitlines()
        assert len(lines) == 2  # one line per live entry
        parsed = {json.loads(line)["k"] for line in lines}
        assert parsed == {f"analysis/{k}" for k in keys}


class TestQuarantineGC:
    def test_count_cap(self, tmp_path):
        cache = ArtifactCache(tmp_path, quarantine_max_entries=2)
        keys = _fill(cache, "analysis", 5)
        for key in keys:
            cache.quarantine("analysis", key, "bad")
        assert cache.quarantine_count() == 2
        assert cache.stats.quarantine_dropped == 3
        # Reason files go with their entries.
        reasons = list((tmp_path / "quarantine").glob("*/*.reason.txt"))
        assert len(reasons) == 2

    def test_age_cap(self, tmp_path):
        cache = ArtifactCache(tmp_path, quarantine_max_age_s=60.0)
        keys = _fill(cache, "analysis", 3)
        for key in keys[:2]:
            cache.quarantine("analysis", key, "bad")
        # Age the first two beyond the cap.
        old = time.time() - 120
        for path in (tmp_path / "quarantine").glob("*/*"):
            os.utime(path, (old, old))
        cache.quarantine("analysis", keys[2], "bad")
        assert cache.quarantine_count() == 1
        assert cache.stats.quarantine_dropped == 2


class TestEnospcResilience:
    def test_injected_enospc_returns_false_and_counts(self, tmp_path):
        injector = FaultInjector(FaultPlan(enospc=1.0))
        cache = ArtifactCache(tmp_path, fault_injector=injector)
        assert cache.put("analysis", "ab" * 32, {"x": 1}) is False
        assert cache.stats.write_errors == 1
        assert cache.stats.writes == 0
        # Nothing half-written: the entry is a clean miss, no temp junk.
        assert cache.get("analysis", "ab" * 32) is None
        assert not list(tmp_path.rglob(".tmp-*"))

    def test_unwritable_root_is_absorbed(self, tmp_path):
        # A file where the cache root should be: every mkdir/write under
        # it fails with ENOTDIR, the OSError family `put` must absorb.
        root = tmp_path / "not-a-dir"
        root.write_text("occupied")
        cache = ArtifactCache(root)
        assert cache.put("analysis", "cd" * 32, {"x": 1}) is False
        assert cache.stats.write_errors == 1

    def test_sha_keyed_determinism(self, tmp_path):
        injector = FaultInjector(FaultPlan(enospc=0.5))
        keys = [f"{i:02d}" + "b" * 62 for i in range(20)]
        first = [injector.enospc_write(k) for k in keys]
        second = [injector.enospc_write(k) for k in keys]
        assert first == second
        assert any(first) and not all(first)


class TestCacheCli:
    def test_stats_json(self, tmp_path, capsys):
        cache = ArtifactCache(tmp_path)
        _fill(cache, "analysis", 2)
        assert cli_main(
            ["cache", "stats", "--cache-dir", str(tmp_path), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 2
        assert payload["total_bytes"] == cache.total_bytes()
        assert payload["quarantine_entries"] == 0

    def test_evict_to_budget(self, tmp_path, capsys):
        cache = ArtifactCache(tmp_path)
        keys = _fill(cache, "analysis", 4)
        cache.quarantine("analysis", keys[0], "bad")
        target = cache.total_bytes() // 2
        assert cli_main(
            [
                "cache", "evict",
                "--cache-dir", str(tmp_path),
                "--max-bytes", str(target),
                "--quarantine-max-entries", "0",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "evicted" in out
        after = ArtifactCache(tmp_path)
        assert after.total_bytes() <= target
        assert after.quarantine_count() == 0
