"""Resource governance: cancellation tokens, pool cancel + wedged-pool
rebuild, the RSS governor, and the admission controller."""

import os
import threading
import time

import pytest

from repro.narada import ArtifactCache, CancelToken, ReproDaemon, RunCancelled
from repro.narada.daemon import AdmissionController, ResourceGovernor, _rss_mb
from repro.narada.faults import (
    FaultLedger,
    FaultTolerantPool,
    InlineRunner,
    PoolUnit,
    RetryPolicy,
)


def _echo(value, key="", attempt=0):
    return (value, attempt)


def _slow(value, key="", attempt=0):
    time.sleep(0.25)
    return (value, attempt)


def _always_crash(value, key="", attempt=0):
    os._exit(17)


def _crash_once(value, key="", attempt=0):
    if attempt == 0:
        os._exit(17)
    return (value, attempt)


def _units(values, fn=_echo):
    return [
        PoolUnit(
            key=f"u{i}", stage="stage", subject="S", name=f"u{i}",
            fn=fn, args=(value,),
        )
        for i, value in enumerate(values)
    ]


def _pool(jobs=1, **policy):
    policy.setdefault("backoff", 0.0)
    policy.setdefault("max_retries", 2)
    return FaultTolerantPool(jobs, RetryPolicy(**policy), FaultLedger())


class TestCancelToken:
    def test_unbounded_token_never_cancels(self):
        token = CancelToken.after(None)
        assert not token.cancelled()
        assert token.remaining() is None
        token.check()  # no raise

    def test_deadline_expiry(self):
        token = CancelToken.after(0.01)
        assert token.remaining() <= 0.01
        time.sleep(0.03)
        assert token.expired()
        assert token.cancelled()
        with pytest.raises(RunCancelled, match="deadline"):
            token.check()

    def test_explicit_cancel_with_reason(self):
        token = CancelToken.after(None)
        token.cancel("operator abort")
        with pytest.raises(RunCancelled, match="operator abort"):
            token.check()

    def test_remaining_clamps_to_zero(self):
        token = CancelToken.after(0.0)
        assert token.remaining() == 0.0


class TestInlineCancel:
    def test_cancelled_before_first_unit(self):
        runner = InlineRunner(RetryPolicy(backoff=0.0), FaultLedger())
        token = CancelToken.after(None)
        token.cancel()
        with pytest.raises(RunCancelled):
            runner.run(_units(["a"]), lambda u: u.fn(*u.args), cancel=token)

    def test_uncancelled_run_completes(self):
        runner = InlineRunner(RetryPolicy(backoff=0.0), FaultLedger())
        results = runner.run(
            _units(["a", "b"]),
            lambda u: u.fn(*u.args, key=u.key),
            cancel=CancelToken.after(None),
        )
        assert set(results) == {"u0", "u1"}


class TestPoolCancel:
    def test_deadline_cancels_mid_run_and_pool_recovers(self):
        pool = _pool(jobs=1)
        try:
            token = CancelToken.after(0.3)
            with pytest.raises(RunCancelled, match="deadline"):
                pool.run(_units(["v"] * 40, fn=_slow), cancel=token)
            # The pool is not poisoned: a fresh run on the same pool
            # completes (workers respawn on demand).
            results = pool.run(_units(["w", "x"]))
            assert results == {"u0": ("w", 0), "u1": ("x", 0)}
        finally:
            pool.close()

    def test_external_cancel_from_another_thread(self):
        pool = _pool(jobs=1)
        token = CancelToken.after(None)
        try:
            killer = threading.Timer(0.2, token.cancel, args=("shed",))
            killer.start()
            with pytest.raises(RunCancelled, match="shed"):
                pool.run(_units(["v"] * 40, fn=_slow), cancel=token)
            killer.join()
        finally:
            pool.close()


class TestWedgedPoolRebuild:
    def test_rebuild_after_consecutive_deaths(self):
        pool = _pool(jobs=2, max_retries=1)
        pool.rebuild_after_deaths = 2
        try:
            results = pool.run(_units(["a", "b", "c"], fn=_always_crash))
            # Every unit fails (crash on every attempt), nothing hangs,
            # and the wedge detector fired at least once.
            assert results == {}
            assert pool.rebuilds >= 1
            assert pool.consecutive_deaths == 0  # reset by the rebuild
            # The rebuilt pool still executes clean work.
            assert pool.run(_units(["ok"]))["u0"] == ("ok", 0)
            assert pool.consecutive_deaths == 0  # reset by forward progress
        finally:
            pool.close()

    def test_no_rebuild_on_scattered_deaths(self):
        pool = _pool(jobs=1, max_retries=2)
        pool.rebuild_after_deaths = 50
        try:
            results = pool.run(_units(["a", "b"], fn=_crash_once))
            assert len(results) == 2
            assert pool.rebuilds == 0
        finally:
            pool.close()


class TestResourceGovernor:
    def test_rss_sampling_reads_proc(self):
        assert _rss_mb(os.getpid()) > 1.0
        assert _rss_mb(2 ** 31 - 5) == 0.0  # no such pid: absorbed

    def test_over_budget_sheds_and_marks_recycle(self):
        governor = ResourceGovernor(budget_mb=0.001)
        governor.poll_once()
        assert governor.shedding
        assert governor.recycle_pending
        assert governor.sheds == 1
        governor.poll_once()
        assert governor.sheds == 1  # transition counted once

    def test_hysteresis_resumes_below_fraction(self):
        governor = ResourceGovernor(budget_mb=100.0)
        governor.sample_rss_mb = lambda: 101.0
        governor.poll_once()
        assert governor.shedding
        governor.sample_rss_mb = lambda: 95.0  # within 90%..100%: hold
        governor.poll_once()
        assert governor.shedding
        governor.sample_rss_mb = lambda: 80.0  # below 90%: resume
        governor.poll_once()
        assert not governor.shedding

    def test_daemon_sheds_overloaded_then_recovers(self, tmp_path):
        daemon = ReproDaemon(
            socket_path=str(tmp_path / "d.sock"),
            jobs=1,
            cache=ArtifactCache(tmp_path / "cache"),
            memory_budget_mb=0.001,
        )
        daemon.governor.poll_once()
        shed = daemon.handle_request({"op": "sleep", "seconds": 0.01})
        assert shed["ok"] is False
        assert shed["error_code"] == "overloaded"
        assert "retry_after_s" in shed
        # Raise the budget: the governor resumes, work is admitted, and
        # the pending pool recycle is applied after the run.
        daemon.governor.budget_mb = 10**6
        daemon.governor.poll_once()
        ok = daemon.handle_request({"op": "sleep", "seconds": 0.01})
        assert ok["ok"] is True
        assert daemon.governor.recycles == 1
        assert not daemon.governor.recycle_pending


class TestAdmissionController:
    def test_bounded_entry_and_shed_count(self):
        admission = AdmissionController(max_queue_depth=2)
        assert admission.try_enter()
        assert admission.try_enter()
        assert not admission.try_enter()
        assert admission.shed_busy == 1
        admission.leave()
        assert admission.try_enter()

    def test_retry_after_scales_with_occupancy(self):
        admission = AdmissionController(max_queue_depth=4)
        admission.note_run_seconds(2.0)
        admission.try_enter()
        one = admission.retry_after()
        admission.try_enter()
        assert admission.retry_after() == pytest.approx(2 * one)

    def test_ema_converges(self):
        admission = AdmissionController()
        admission.note_run_seconds(1.0)
        for _ in range(30):
            admission.note_run_seconds(3.0)
        assert admission.run_seconds_ema == pytest.approx(3.0, abs=0.05)

    def test_to_dict_is_json_ready(self):
        payload = AdmissionController().to_dict()
        assert payload["occupancy"] == 0
        assert payload["max_queue_depth"] == 8
