"""Batched-dispatch tests: sizing, mid-batch fault semantics, warm
reuse, and the determinism contract across batch boundaries.

The invariant under test throughout: batching changes *scheduling*,
never results.  A crash or hang on the k-th unit of a batch blames
exactly that unit; results already streamed for earlier units survive;
units queued behind it go back to pending with their attempt counts
untouched; and any ``batch_ms`` produces byte-identical reports to
``jobs=1``.
"""

import os
import time
from collections import deque

import pytest

from repro.narada import (
    ArtifactCache,
    PipelineConfig,
    PipelineOrchestrator,
    subject_specs,
)
from repro.narada.faults import (
    DEFAULT_BATCH_TARGET_MS,
    MAX_BATCH_UNITS,
    BatchSizer,
    FaultLedger,
    FaultTolerantPool,
    PoolUnit,
    RetryPolicy,
)
from repro.subjects import get_subject

SUBJECT = "C8"
CONFIG = PipelineConfig(random_runs=2, retry_backoff=0.0)


def _spec():
    return subject_specs([get_subject(SUBJECT)])[0]


def _config(**overrides):
    base = CONFIG.to_dict()
    base.update(overrides)
    return PipelineConfig.from_dict(base)


# Module-level worker functions so the pool can pickle them by reference.


def _echo(value, key="", attempt=0):
    return (value, attempt)


def _crash_on_marker(value, key="", attempt=0):
    if value == "CRASH" and attempt == 0:
        os._exit(17)  # hard worker death mid-batch
    return (value, attempt)


def _hang_on_marker(value, key="", attempt=0):
    if value == "HANG" and attempt == 0:
        time.sleep(60)
    return (value, attempt)


def _raise_on_marker(value, key="", attempt=0):
    if value == "BOOM":
        raise ValueError(f"boom in {key}")
    return (value, attempt)


def _units(values, fn=_echo, stage="stage"):
    return [
        PoolUnit(
            key=f"u{i}",
            stage=stage,
            subject=SUBJECT,
            name=f"u{i}",
            fn=fn,
            args=(value,),
        )
        for i, value in enumerate(values)
    ]


def _pool(jobs=1, on_complete=None, **policy):
    policy.setdefault("backoff", 0.0)
    return FaultTolerantPool(
        jobs, RetryPolicy(**policy), FaultLedger(), on_complete=on_complete
    )


class TestBatchSizer:
    def test_unknown_stage_probes_with_one_unit(self):
        assert BatchSizer().size("never-seen") == 1

    def test_fast_units_grow_the_batch(self):
        sizer = BatchSizer(target_ms=100.0)
        sizer.observe("s", 0.010)  # 10 ms/unit -> 10 units per 100 ms
        assert sizer.size("s") == 10

    def test_slow_units_stay_single(self):
        sizer = BatchSizer(target_ms=75.0)
        sizer.observe("s", 0.5)
        assert sizer.size("s") == 1

    def test_clamped_to_max_units(self):
        sizer = BatchSizer(target_ms=75.0)
        sizer.observe("s", 1e-9)
        assert sizer.size("s") == MAX_BATCH_UNITS

    def test_zero_target_disables_batching(self):
        sizer = BatchSizer(target_ms=0.0)
        sizer.observe("s", 1e-9)
        assert sizer.size("s") == 1

    def test_ema_tracks_recent_cost(self):
        sizer = BatchSizer(alpha=0.5)
        sizer.observe("s", 0.1)
        sizer.observe("s", 0.2)
        assert sizer.unit_cost("s") == pytest.approx(0.15)
        assert sizer.unit_cost("other") is None

    def test_per_stage_isolation(self):
        sizer = BatchSizer(target_ms=100.0)
        sizer.observe("fast", 0.001)
        sizer.observe("slow", 1.0)
        assert sizer.size("fast") > 1
        assert sizer.size("slow") == 1


class TestTakeBatch:
    """_take_batch is pure queue surgery — testable without workers."""

    def test_batches_are_stage_homogeneous(self):
        pool = _pool()
        pool.sizer.observe("a", 1e-6)
        pool.sizer.observe("b", 1e-6)
        pending = deque(
            _units(["x"] * 3, stage="a") + _units(["y"] * 3, stage="b")
        )
        batch = pool._take_batch(pending, time.monotonic())
        assert [u.stage for u in batch] == ["a", "a", "a"]
        assert len(pending) == 3

    def test_unseen_stage_gets_probe_of_one(self):
        pool = _pool()
        pending = deque(_units(["x"] * 5))
        batch = pool._take_batch(pending, time.monotonic())
        assert len(batch) == 1

    def test_backed_off_units_are_skipped(self):
        pool = _pool()
        pool.sizer.observe("stage", 1e-6)
        units = _units(["x"] * 4)
        units[1].not_before = time.monotonic() + 60.0
        batch = pool._take_batch(deque(units), time.monotonic())
        assert [u.key for u in batch] == ["u0", "u2", "u3"]


class TestMidBatchFaults:
    def _run_batched(self, values, fn, jobs=1, on_complete=None, **policy):
        pool = _pool(jobs=jobs, on_complete=on_complete, **policy)
        # Seed the cost model so the first dispatch batches everything.
        pool.sizer.observe("stage", 1e-6)
        with pool:
            results = pool.run(_units(values, fn=fn))
        return results, pool.ledger

    def test_crash_on_kth_unit_blames_only_it(self):
        completions = []
        values = ["a", "b", "c", "CRASH", "e", "f"]
        results, ledger = self._run_batched(
            values,
            _crash_on_marker,
            max_retries=2,
            on_complete=lambda unit, payload: completions.append(unit.key),
        )
        assert ledger.ok()
        assert sorted(results) == [f"u{i}" for i in range(6)]
        # The crashed unit burned exactly one attempt; the units queued
        # behind it in the batch retried nothing.
        assert results["u3"] == ("CRASH", 1)
        assert results["u4"] == ("e", 0)
        assert results["u5"] == ("f", 0)
        assert ledger.retries == 1
        assert ledger.pool_respawns == 1
        # Results streamed before the crash were kept, not re-run.
        assert sorted(completions) == sorted(results)
        assert len(completions) == 6

    def test_hang_on_kth_unit_is_killed_and_blamed(self):
        values = ["a", "b", "HANG", "d"]
        results, ledger = self._run_batched(
            values, _hang_on_marker, max_retries=2, unit_timeout=1.0
        )
        assert ledger.ok()
        assert sorted(results) == ["u0", "u1", "u2", "u3"]
        assert results["u2"] == ("HANG", 1)
        assert results["u3"] == ("d", 0)  # requeued, attempt untouched
        assert ledger.timeouts == 1
        assert ledger.pool_respawns == 1

    def test_ordinary_exception_does_not_kill_the_batch(self):
        values = ["a", "BOOM", "c"]
        results, ledger = self._run_batched(
            values, _raise_on_marker, max_retries=0
        )
        # The worker survived and finished the rest of its batch.
        assert sorted(results) == ["u0", "u2"]
        assert ledger.pool_respawns == 0
        assert len(ledger.failures) == 1
        failure = ledger.failures[0]
        assert failure.unit == "u1"
        assert "boom in u1" in failure.error
        assert failure.attempts == 1

    def test_batches_and_warm_reuses_are_counted(self):
        pool = _pool(jobs=1)
        pool.sizer.observe("stage", 1e-6)
        with pool:
            first = pool.run(_units(["a", "b", "c"]))
            second = pool.run(_units(["d", "e", "f"]))
        assert len(first) == 3 and len(second) == 3
        ledger = pool.ledger
        assert ledger.completed == 6
        assert ledger.batches == 2  # one dispatch per run
        # The second run reused the worker spawned by the first.
        assert ledger.warm_reuses >= 1
        assert ledger.pool_respawns == 0

    def test_probe_then_grow(self):
        """A cold stage probes with one unit, then batches the rest."""
        pool = _pool(jobs=1)
        with pool:
            results = pool.run(_units(["v"] * 20))
        assert len(results) == 20
        assert 1 < pool.ledger.batches < 20


class TestPipelineDeterminism:
    @pytest.fixture(scope="class")
    def serial_digest(self):
        with PipelineOrchestrator(jobs=1, config=CONFIG) as orch:
            outcome = orch.run([_spec()])[0]
        assert orch.fault_ledger.ok()
        return outcome.digest()

    @pytest.mark.parametrize("batch_ms", [0.0, DEFAULT_BATCH_TARGET_MS, 1000.0])
    def test_byte_identical_across_batch_sizes(self, serial_digest, batch_ms):
        config = _config(batch_ms=batch_ms)
        with PipelineOrchestrator(jobs=2, config=config) as orch:
            outcome = orch.run([_spec()])[0]
        assert orch.fault_ledger.ok()
        assert outcome.digest() == serial_digest

    def test_big_batches_with_crashes_stay_identical(self, serial_digest):
        config = _config(
            batch_ms=1000.0, fault_inject="crash:0.4", max_retries=12
        )
        with PipelineOrchestrator(jobs=2, config=config) as orch:
            outcome = orch.run([_spec()])[0]
            ledger = orch.fault_ledger
        assert ledger.ok(), [f.error for f in ledger.failures]
        assert ledger.retries > 0
        assert outcome.digest() == serial_digest

    def test_batch_ms_stays_out_of_cache_keys(self):
        a = _config(batch_ms=10.0)
        b = _config(batch_ms=1000.0)
        assert a.synthesis_config("Any") == b.synthesis_config("Any")
        assert a.detection_config("Any") == b.detection_config("Any")

    def test_resume_replays_nothing_checkpointed(
        self, monkeypatch, tmp_path, serial_digest
    ):
        """A batched pooled run journals per *unit* as results stream
        in; after a kill mid-batch, --resume replays every journaled
        unit and recomputes only the rest."""
        import repro.narada.faults as faults_mod

        real_mark = faults_mod.RunLedger.mark_done
        calls = {"n": 0}

        def kill_after_four(self, key, stage, subject):
            real_mark(self, key, stage, subject)
            calls["n"] += 1
            if calls["n"] >= 4:
                raise KeyboardInterrupt

        monkeypatch.setattr(faults_mod.RunLedger, "mark_done", kill_after_four)
        cache = ArtifactCache(tmp_path / "cache")
        config = _config(batch_ms=1000.0)
        with pytest.raises(KeyboardInterrupt):
            with PipelineOrchestrator(
                jobs=2, cache=cache, config=config
            ) as orch:
                orch.run([_spec()])

        monkeypatch.setattr(faults_mod.RunLedger, "mark_done", real_mark)
        with PipelineOrchestrator(
            jobs=2, cache=cache, config=config, resume=True
        ) as orch:
            outcome = orch.run([_spec()])[0]
            ledger = orch.fault_ledger
        assert outcome.digest() == serial_digest
        assert ledger.ok()
        # The 4 journaled units (synthesis + 3 fuzz) replay; the rest
        # recompute — batch boundaries change neither count nor bytes.
        assert ledger.resumed == 4
        total_units = len(outcome.synthesis.tests) + 1
        assert ledger.completed == total_units - 4


class TestWarmPoolAcrossPhases:
    def test_one_pool_spans_synthesis_and_detection(self):
        """Detection-phase dispatches reuse synthesis-phase workers."""
        with PipelineOrchestrator(jobs=2, config=CONFIG) as orch:
            orch.run([_spec()])
            ledger = orch.fault_ledger
            pool = orch._pool
        assert ledger.ok()
        assert pool is not None
        assert ledger.pool_respawns == 0
        assert ledger.warm_reuses >= 1
        assert ledger.batches >= 2  # at least synthesis + one fuzz batch

    def test_borrowed_pool_survives_orchestrator_close(self):
        pool = FaultTolerantPool(2, CONFIG.retry_policy(), FaultLedger())
        with pool:
            for _ in range(2):
                orch = PipelineOrchestrator(jobs=2, config=CONFIG, pool=pool)
                try:
                    outcome = orch.run([_spec()])[0]
                finally:
                    orch.close()
                assert outcome.synthesis is not None
            # Workers outlive every borrowing orchestrator.
            assert pool._workers
            assert all(w.process.is_alive() for w in pool._workers)
        assert pool.ledger.warm_reuses >= 1

    def test_cli_batch_ms_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--subjects", "C8", "--batch-ms", "250"]
        )
        assert args.batch_ms == 250.0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
