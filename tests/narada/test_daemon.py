"""Daemon tests: framing, request isolation, warm-cache reuse across
requests, graceful drain, and client reconnect after a restart.

Most tests drive an in-process :class:`ReproDaemon` on a unix socket in
a tmp dir (serve_forever on a thread, clients on the test thread); the
SIGTERM drain test exercises the real ``repro serve`` subprocess the
way an operator would.
"""

import json
import os
import pathlib
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

import pytest

from repro.narada import (
    ArtifactCache,
    DaemonClient,
    PipelineConfig,
    PipelineOrchestrator,
    ReproDaemon,
    default_socket_path,
    subject_specs,
)
from repro.narada.daemon import (
    MAX_FRAME_BYTES,
    ProtocolError,
    parse_tcp,
    recv_frame,
    send_frame,
)
from repro.subjects import get_subject

RUNS = 2


@pytest.fixture
def daemon(tmp_path):
    """In-process daemon on a unix socket; drained at teardown."""
    d = ReproDaemon(
        socket_path=str(tmp_path / "daemon.sock"),
        jobs=1,
        cache=ArtifactCache(tmp_path / "cache"),
    )
    d.bind()
    server = threading.Thread(target=d.serve_forever, daemon=True)
    server.start()
    yield d
    d.initiate_drain()
    server.join(timeout=30)
    assert not server.is_alive()


def _client(d: ReproDaemon, **kwargs) -> DaemonClient:
    return DaemonClient(socket_path=d.socket_path, **kwargs)


class TestFraming:
    def test_roundtrip(self):
        a, b = socket.socketpair()
        with a, b:
            send_frame(a, {"op": "ping", "n": 1})
            assert recv_frame(b) == {"op": "ping", "n": 1}

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        with b:
            a.close()
            assert recv_frame(b) is None

    def test_mid_frame_eof_is_protocol_error(self):
        a, b = socket.socketpair()
        with b:
            a.sendall(struct.pack(">I", 100) + b"short")
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_frame(b)

    def test_oversized_length_is_protocol_error(self):
        a, b = socket.socketpair()
        with a, b:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="exceeds limit"):
                recv_frame(b)

    def test_non_object_payload_is_protocol_error(self):
        a, b = socket.socketpair()
        with a, b:
            body = json.dumps([1, 2, 3]).encode()
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError, match="not an object"):
                recv_frame(b)

    def test_undecodable_body_is_protocol_error(self):
        a, b = socket.socketpair()
        with a, b:
            a.sendall(struct.pack(">I", 3) + b"\xff{{")
            with pytest.raises(ProtocolError, match="undecodable"):
                recv_frame(b)

    def test_parse_tcp(self):
        assert parse_tcp("127.0.0.1:7777") == ("127.0.0.1", 7777)
        with pytest.raises(ValueError, match="expected HOST:PORT"):
            parse_tcp("no-port")

    def test_default_socket_path_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_DAEMON_SOCKET", "/tmp/custom.sock")
        assert default_socket_path() == "/tmp/custom.sock"


class TestRequestHandling:
    def test_ping(self, daemon):
        with _client(daemon) as client:
            response = client.request({"op": "ping"})
        assert response["ok"]
        assert response["protocol"] == 1
        assert response["pid"] == os.getpid()

    def test_unknown_op_is_an_error_response(self, daemon):
        with _client(daemon) as client:
            response = client.request({"op": "explode"})
        assert not response["ok"]
        assert "unknown op" in response["error"]
        # The connection survives an error response.
        with _client(daemon) as client:
            assert client.request({"op": "ping"})["ok"]

    def test_requests_get_isolated_ids_and_ledgers(self, daemon):
        with _client(daemon) as client:
            first = client.request(
                {"op": "detect", "subjects": ["C1"], "runs": RUNS}
            )
            second = client.request(
                {"op": "detect", "subjects": ["C8"], "runs": RUNS}
            )
        assert first["ok"] and second["ok"]
        assert first["request_id"] != second["request_id"]
        # Per-request ledgers: each counts only its own run's units.
        assert first["ledger"] is not second["ledger"]
        assert first["ledger"]["counters"]["completed"] > 0
        assert set(first["subjects"]) == {"C1"}
        assert set(second["subjects"]) == {"C8"}

    def test_warm_cache_hits_across_requests(self, daemon):
        request = {"op": "detect", "subjects": ["C8"], "runs": RUNS}
        with _client(daemon) as client:
            cold = client.request(request)
            warm = client.request(request)
        entry_cold = cold["subjects"]["C8"]
        entry_warm = warm["subjects"]["C8"]
        assert not entry_cold["synthesis_cached"]
        assert entry_warm["synthesis_cached"]
        assert entry_warm["detection_cached"]
        assert entry_warm["digest"] == entry_cold["digest"]
        assert daemon.cache.stats.hits > 0

    def test_digests_match_direct_orchestrator(self, daemon):
        with _client(daemon) as client:
            response = client.request(
                {"op": "detect", "subjects": ["C8"], "runs": RUNS}
            )
        config = PipelineConfig(random_runs=RUNS)
        specs = subject_specs([get_subject("C8")])
        with PipelineOrchestrator(jobs=1, config=config) as orch:
            direct = orch.run(specs)[0].digest()
        assert response["subjects"]["C8"]["digest"] == direct

    def test_adhoc_source_request(self, daemon):
        source = get_subject("C8").source
        with _client(daemon) as client:
            response = client.request(
                {"op": "synthesize", "source": source, "runs": RUNS}
            )
        assert response["ok"]
        (entry,) = response["subjects"].values()
        assert entry["tests"] > 0

    def test_request_error_reports_not_crashes(self, daemon):
        with _client(daemon) as client:
            response = client.request(
                {"op": "detect", "subjects": ["NOPE99"]}
            )
        assert not response["ok"]
        assert "NOPE99" in response["error"]
        assert daemon.stats.errors == 1

    def test_concurrent_clients_are_both_served(self, daemon):
        responses = {}

        def call(name, subject):
            with _client(daemon) as client:
                responses[name] = client.request(
                    {"op": "detect", "subjects": [subject], "runs": RUNS}
                )

        threads = [
            threading.Thread(target=call, args=("a", "C1")),
            threading.Thread(target=call, args=("b", "C8")),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert responses["a"]["ok"] and responses["b"]["ok"]
        assert responses["a"]["request_id"] != responses["b"]["request_id"]
        assert set(responses["a"]["subjects"]) == {"C1"}
        assert set(responses["b"]["subjects"]) == {"C8"}

    def test_stats_records_recent_requests(self, daemon):
        with _client(daemon) as client:
            client.request({"op": "detect", "subjects": ["C1"], "runs": RUNS})
            stats = client.request({"op": "stats"})
        assert stats["ok"]
        assert stats["totals"]["requests"] >= 2
        ops = [r["op"] for r in stats["recent_requests"]]
        assert "detect" in ops


class TestDrainAndRestart:
    def test_shutdown_op_drains(self, tmp_path):
        d = ReproDaemon(socket_path=str(tmp_path / "d.sock"), jobs=1)
        d.bind()
        server = threading.Thread(target=d.serve_forever)
        server.start()
        with DaemonClient(socket_path=d.socket_path) as client:
            response = client.request({"op": "shutdown"})
        assert response["ok"] and response["draining"]
        server.join(timeout=30)
        assert not server.is_alive()
        assert not pathlib.Path(d.socket_path).exists()  # unlinked

    def test_client_reconnects_after_daemon_restart(self, tmp_path):
        path = str(tmp_path / "d.sock")

        def serve_once():
            d = ReproDaemon(socket_path=path, jobs=1)
            d.bind()
            thread = threading.Thread(target=d.serve_forever)
            thread.start()
            return d, thread

        first, thread = serve_once()
        with DaemonClient(socket_path=path) as client:
            pid_request = client.request({"op": "ping"})
        first.initiate_drain()
        thread.join(timeout=30)

        second, thread = serve_once()
        try:
            # A fresh client with retries rides out the restart window.
            with DaemonClient(socket_path=path, retries=10) as client:
                again = client.request({"op": "ping"})
            assert again["ok"]
            assert again["uptime_s"] <= pid_request["uptime_s"] + 60
        finally:
            second.initiate_drain()
            thread.join(timeout=30)

    def test_sigterm_drains_inflight_request(self, tmp_path):
        """Operator path: real ``repro serve`` subprocess, SIGTERM lands
        mid-request, the response still arrives and exit is clean."""
        path = str(tmp_path / "d.sock")
        env = dict(os.environ)
        root = pathlib.Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = str(root / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--socket", path,
                "--jobs", "1",
                "--cache-dir", str(tmp_path / "cache"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            result = {}

            def detect():
                with DaemonClient(socket_path=path, retries=25) as client:
                    result["response"] = client.request(
                        {"op": "detect", "subjects": ["C8"], "runs": RUNS}
                    )

            worker = threading.Thread(target=detect)
            worker.start()
            # Let the request get in flight, then ask for shutdown.
            time.sleep(1.0)
            proc.send_signal(signal.SIGTERM)
            worker.join(timeout=60)
            assert not worker.is_alive()
            stdout = proc.communicate(timeout=60)[0]
            assert proc.returncode == 0, stdout
            assert "drained after" in stdout
            response = result["response"]
            assert response["ok"], response
            assert response["subjects"]["C8"]["digest"]
            assert not pathlib.Path(path).exists()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
