"""Unit tests for the class table and the resolver."""

import pytest

from repro._util.errors import TypeError_
from repro.lang import ast, load
from repro.lang.classtable import OBJECT, ClassTable
from repro.lang.parser import parse
from repro.lang.types import INT, class_type


def table_for(source):
    return ClassTable(parse(source))


class TestClassTable:
    def test_field_type_lookup(self):
        table = table_for("class A { int x; B other; }")
        assert table.field_type("A", "x") == INT
        assert table.field_type("A", "other") == class_type("B")
        assert table.field_type("A", "missing") is None

    def test_method_lookup(self):
        table = table_for("class A { void m() { } }")
        assert table.method("A", "m") is not None
        assert table.method("A", "nope") is None
        assert table.method("Nope", "m") is None

    def test_constructor_lookup(self):
        table = table_for("class A { A() { } void m() { } } class B { }")
        assert table.constructor("A").is_constructor
        assert table.constructor("B") is None

    def test_builtin_classes_known(self):
        table = table_for("class A { }")
        assert table.has_class("IntArray")
        assert table.is_builtin("RefArray")
        assert table.field_type("IntArray", "elem") == INT

    def test_duplicate_class_rejected(self):
        with pytest.raises(TypeError_):
            table_for("class A { } class A { }")

    def test_duplicate_field_rejected(self):
        with pytest.raises(TypeError_):
            table_for("class A { int x; int x; }")

    def test_duplicate_method_rejected(self):
        with pytest.raises(TypeError_):
            table_for("class A { void m() {} void m() {} }")

    def test_unknown_interface_rejected(self):
        with pytest.raises(TypeError_):
            table_for("class A implements Nope { }")


class TestTypeCompatibility:
    SOURCE = (
        "interface Q { void go(); }"
        "class A implements Q { void go() { } }"
        "class B implements Q { void go() { } }"
        "class C { }"
    )

    def test_class_matches_itself(self):
        table = table_for(self.SOURCE)
        assert table.value_matches("A", class_type("A"))
        assert not table.value_matches("A", class_type("B"))

    def test_class_matches_implemented_interface(self):
        table = table_for(self.SOURCE)
        assert table.value_matches("A", class_type("Q"))
        assert table.value_matches("B", class_type("Q"))
        assert not table.value_matches("C", class_type("Q"))

    def test_object_matches_everything(self):
        table = table_for(self.SOURCE)
        assert table.value_matches("A", OBJECT)
        assert table.value_matches("C", OBJECT)

    def test_types_compatible_symmetric(self):
        table = table_for(self.SOURCE)
        assert table.types_compatible(class_type("A"), class_type("Q"))
        assert table.types_compatible(class_type("Q"), class_type("A"))
        assert not table.types_compatible(class_type("A"), class_type("B"))
        assert not table.types_compatible(class_type("A"), INT)

    def test_concrete_classes_for_interface(self):
        table = table_for(self.SOURCE)
        assert set(table.concrete_classes_for(class_type("Q"))) == {"A", "B"}
        assert set(table.concrete_classes_for(OBJECT)) == {"A", "B", "C"}


class TestResolver:
    def test_valid_program_loads(self):
        load(
            "interface Q { void go(); }"
            "class A implements Q { int x; void go() { this.x = 1; } }"
            "test T { A a = new A(); a.go(); }"
        )

    def test_unknown_new_class(self):
        with pytest.raises(TypeError_):
            load("class A { void m() { B b = new B(); } }")

    def test_constructor_arity_checked(self):
        with pytest.raises(TypeError_):
            load("class A { A(int x) { } } test T { A a = new A(); }")

    def test_unknown_field_on_known_class(self):
        with pytest.raises(TypeError_):
            load("class A { void m() { this.missing = 1; } }")

    def test_unknown_method_on_known_class(self):
        with pytest.raises(TypeError_):
            load("class A { void m() { this.nope(); } }")

    def test_method_arity_checked(self):
        with pytest.raises(TypeError_):
            load("class A { void m(int x) { } void n() { this.m(); } }")

    def test_undeclared_variable(self):
        with pytest.raises(TypeError_):
            load("class A { void m() { ghost = 1; } }")

    def test_calls_through_interface_unchecked(self):
        # Dynamic dispatch: calls on interface-typed values resolve at
        # run time, so the resolver lets them through.
        load(
            "interface Q { void go(); }"
            "class A implements Q { void go() { } }"
            "class W { Q q; void use() { this.q.go(); } }"
        )

    def test_rand_type_from_field_context(self):
        table = load("class X { } class A { X o; void m() { this.o = rand(); } }")
        method = table.method("A", "m")
        rand = method.body.stmts[0].value
        assert isinstance(rand, ast.Rand)
        assert rand.result_type == class_type("X")

    def test_rand_type_from_int_context(self):
        table = load("class A { void m() { int x = rand(); } }")
        rand = table.method("A", "m").body.stmts[0].init
        assert rand.result_type == INT

    def test_array_arity_checked(self):
        with pytest.raises(TypeError_):
            load("class A { void m() { IntArray a = new IntArray(); } }")
