"""Parsing, printing, and semantics of the ``fork`` statement."""

import pytest

from repro.lang import ast, load, parse, pretty_program
from repro.runtime import Execution, RandomScheduler, VM
from repro.runtime.vm import ThreadStatus


class TestForkParsing:
    def test_fork_parses_in_test_body(self):
        program = parse(
            "class A { void m() { } }"
            " test T { A a = new A(); fork { a.m(); } }"
        )
        stmts = program.tests[0].body.stmts
        assert isinstance(stmts[1], ast.Fork)
        assert len(stmts[1].body.stmts) == 1

    def test_fork_round_trips_through_pretty_printer(self):
        source = (
            "class A { void m() { } }"
            " test T { A a = new A(); fork { a.m(); } fork { a.m(); } }"
        )
        printed = pretty_program(parse(source))
        assert printed.count("fork {") == 2
        reparsed = parse(printed)
        forks = [
            s for s in reparsed.tests[0].body.stmts if isinstance(s, ast.Fork)
        ]
        assert len(forks) == 2

    def test_fork_resolves_captured_variables(self):
        load(
            "class A { void m() { } }"
            " test T { A a = new A(); fork { a.m(); } }"
        )

    def test_fork_with_undeclared_variable_rejected(self):
        from repro._util.errors import TypeError_

        with pytest.raises(TypeError_):
            load("class A { void m() { } } test T { fork { ghost.m(); } }")


class TestForkSemantics:
    COUNTER = """
    class Counter {
      int count;
      void inc() { int t = this.count; this.count = t + 1; }
    }
    test Racy {
      Counter c = new Counter();
      fork { c.inc(); }
      fork { c.inc(); }
      c.inc();
    }
    """

    def _run(self, seed):
        table = load(self.COUNTER)
        vm = VM(table)
        env: dict = {}
        test = table.program.test_decl("Racy")
        execution = Execution(vm)
        execution.spawn(
            lambda ctx: vm.interp.run_client_stmts(test.body.stmts, ctx, env)
        )
        result = execution.run(RandomScheduler(seed))
        return vm, env, result, execution

    def test_forked_threads_all_complete(self):
        vm, env, result, execution = self._run(0)
        assert result.completed
        assert len(execution.thread_ids()) == 3  # main + two forks
        for tid in execution.thread_ids():
            assert execution.thread(tid).status is ThreadStatus.DONE

    def test_fork_captures_environment_snapshot(self):
        vm, env, result, _ = self._run(1)
        count = vm.heap.get(env["c"].ref).fields["count"]
        assert 1 <= count <= 3

    def test_race_manifests_across_forks(self):
        finals = set()
        for seed in range(25):
            vm, env, result, _ = self._run(seed)
            assert result.completed
            finals.add(vm.heap.get(env["c"].ref).fields["count"])
        assert len(finals) >= 2, finals

    def test_fork_in_library_method_faults(self):
        # fork is client-only; a library fork must fault, not spawn.
        source = """
        class A { void m() { } }
        test T { A a = new A(); a.m(); }
        """
        table = load(source)
        # Inject a Fork node into the library method body directly (the
        # parser cannot produce this, but the VM must still reject it).
        method = table.method("A", "m")
        method.body.stmts.append(ast.Fork(body=ast.Block(stmts=[])))
        vm = VM(table)
        result, _ = vm.run_test("T")
        assert result.faults
        assert result.faults[0][1].kind == "fork-in-library"

    def test_sequential_scheduler_runs_main_first(self):
        # Under the seed-trace scheduler, forked bodies run after the
        # main body finishes: sequential seeds stay deterministic.
        table = load(self.COUNTER)
        vm = VM(table)
        result, env = vm.run_test("Racy")
        assert result.clean
        assert vm.heap.get(env["c"].ref).fields["count"] == 3
