"""Unit tests for the MiniJ parser."""

import pytest

from repro._util.errors import ParseError
from repro.lang import ast
from repro.lang.parser import parse
from repro.lang.types import BOOL, INT, VOID


class TestDeclarations:
    def test_empty_class(self):
        program = parse("class A { }")
        assert len(program.classes) == 1
        assert program.classes[0].name == "A"

    def test_fields_and_types(self):
        program = parse("class A { int x; bool b; B other; }")
        fields = program.classes[0].fields
        assert [f.name for f in fields] == ["x", "b", "other"]
        assert fields[0].field_type == INT
        assert fields[1].field_type == BOOL
        assert fields[2].field_type.name == "B"

    def test_field_initializer(self):
        program = parse("class A { int x = 7; }")
        init = program.classes[0].fields[0].init
        assert isinstance(init, ast.IntLit) and init.value == 7

    def test_method_signature(self):
        program = parse("class A { int m(B b, int k) { return k; } }")
        method = program.classes[0].methods[0]
        assert method.name == "m"
        assert method.return_type == INT
        assert [p.name for p in method.params] == ["b", "k"]
        assert not method.synchronized

    def test_synchronized_method(self):
        program = parse("class A { synchronized void m() { } }")
        assert program.classes[0].methods[0].synchronized

    def test_constructor_recognized(self):
        program = parse("class A { A(int x) { } void A2() { } }")
        ctor = program.classes[0].methods[0]
        assert ctor.is_constructor
        assert ctor.return_type == VOID

    def test_interface(self):
        program = parse("interface Q { void removeFirst(); int size(); }")
        iface = program.interfaces[0]
        assert iface.name == "Q"
        assert [s.name for s in iface.signatures] == ["removeFirst", "size"]

    def test_implements_list(self):
        program = parse("interface I {} interface J {} class A implements I, J { }")
        assert program.classes[0].implements == ["I", "J"]

    def test_test_declaration(self):
        program = parse("class A { } test T { A a = new A(); }")
        test = program.tests[0]
        assert test.name == "T"
        assert isinstance(test.body.stmts[0], ast.VarDecl)

    def test_synchronized_field_rejected(self):
        with pytest.raises(ParseError):
            parse("class A { synchronized int x; }")

    def test_void_field_rejected(self):
        with pytest.raises(ParseError):
            parse("class A { void x; }")


class TestStatements:
    def _stmt(self, text):
        program = parse("class A { void m(int p, B q) { %s } }" % text)
        return program.classes[0].methods[0].body.stmts[0]

    def test_var_decl_with_init(self):
        stmt = self._stmt("int x = 1;")
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.name == "x"

    def test_class_typed_var_decl(self):
        stmt = self._stmt("B other = q;")
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.decl_type.name == "B"

    def test_assign_var(self):
        stmt = self._stmt("p = 2;")
        assert isinstance(stmt, ast.AssignVar)

    def test_assign_field(self):
        stmt = self._stmt("this.x = p;")
        assert isinstance(stmt, ast.AssignField)
        assert stmt.field_name == "x"
        assert isinstance(stmt.target, ast.This)

    def test_assign_nested_field(self):
        stmt = self._stmt("q.inner.x = p;")
        assert isinstance(stmt, ast.AssignField)
        assert isinstance(stmt.target, ast.FieldGet)

    def test_assign_to_call_rejected(self):
        with pytest.raises(ParseError):
            self._stmt("q.m2() = 1;")

    def test_if_else_chain(self):
        stmt = self._stmt("if (p > 0) { } else if (p < 0) { } else { }")
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.else_body, ast.If)
        assert isinstance(stmt.else_body.else_body, ast.Block)

    def test_while(self):
        stmt = self._stmt("while (p > 0) { p = p - 1; }")
        assert isinstance(stmt, ast.While)

    def test_return_value_and_void(self):
        assert isinstance(self._stmt("return;"), ast.Return)
        stmt = self._stmt("return p;")
        assert isinstance(stmt.value, ast.VarRef)

    def test_synchronized_block(self):
        stmt = self._stmt("synchronized (this) { p = 1; }")
        assert isinstance(stmt, ast.Sync)
        assert isinstance(stmt.lock, ast.This)

    def test_assert(self):
        stmt = self._stmt("assert p > 0;")
        assert isinstance(stmt, ast.Assert)

    def test_expression_statement(self):
        stmt = self._stmt("q.m2();")
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.Call)


class TestExpressions:
    def _expr(self, text):
        program = parse("class A { void m(int p, int q) { int r = %s; } }" % text)
        return program.classes[0].methods[0].body.stmts[0].init

    def test_precedence_mul_over_add(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_compare_over_and(self):
        program = parse("class A { void m(int p) { bool b = p > 1 && p < 3; } }")
        expr = program.classes[0].methods[0].body.stmts[0].init
        assert expr.op == "&&"
        assert expr.left.op == ">"

    def test_left_associativity(self):
        expr = self._expr("10 - 2 - 3")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_unary_operators(self):
        expr = self._expr("-p")
        assert isinstance(expr, ast.Unary) and expr.op == "-"

    def test_parenthesized(self):
        expr = self._expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_chained_field_and_call(self):
        program = parse("class A { void m(B q) { int r = q.inner.size(); } }")
        expr = program.classes[0].methods[0].body.stmts[0].init
        assert isinstance(expr, ast.Call)
        assert isinstance(expr.target, ast.FieldGet)

    def test_new_with_args(self):
        expr = self._expr("new A()")
        assert isinstance(expr, ast.New)

    def test_rand(self):
        expr = self._expr("rand()")
        assert isinstance(expr, ast.Rand)

    def test_literals(self):
        assert self._expr("true").value is True
        assert self._expr("false").value is False
        assert isinstance(self._expr("null"), ast.NullLit)


class TestNodeIds:
    def test_node_ids_unique(self):
        program = parse(
            "class A { int x; void m(int p) { this.x = p; int y = this.x; } }"
            " test T { A a = new A(); a.m(3); }"
        )
        seen = set()

        def collect(node):
            if isinstance(node, (ast.Stmt, ast.Expr)):
                assert node.node_id >= 0
                assert node.node_id not in seen
                seen.add(node.node_id)
            for value in vars(node).values():
                if isinstance(value, (ast.Stmt, ast.Expr)):
                    collect(value)
                elif isinstance(value, list):
                    for item in value:
                        if isinstance(item, (ast.Stmt, ast.Expr)):
                            collect(item)

        for cls in program.classes:
            for method in cls.methods:
                collect(method.body)
        for test in program.tests:
            collect(test.body)
        assert len(seen) > 10


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "class {",
            "class A { int; }",
            "class A { void m( { } }",
            "test T { x = ; }",
            "class A } ",
            "int x;",  # top-level statement
        ],
    )
    def test_syntax_errors(self, source):
        with pytest.raises(ParseError):
            parse(source)
