"""Unit tests for the MiniJ lexer."""

import pytest

from repro._util.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        assert kinds("") == [TokenKind.EOF]

    def test_whitespace_only_yields_eof(self):
        assert kinds("  \t\n  \r\n") == [TokenKind.EOF]

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].kind is TokenKind.INT
        assert tokens[0].text == "42"

    def test_identifier(self):
        tokens = tokenize("fooBar_3")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "fooBar_3"

    def test_keywords_are_not_identifiers(self):
        assert kinds("class")[0] is TokenKind.KW_CLASS
        assert kinds("synchronized")[0] is TokenKind.KW_SYNCHRONIZED
        assert kinds("while")[0] is TokenKind.KW_WHILE
        assert kinds("test")[0] is TokenKind.KW_TEST
        assert kinds("rand")[0] is TokenKind.KW_RAND

    def test_boolean_alias(self):
        # "boolean" (Java spelling) and "bool" both lex to KW_BOOL.
        assert kinds("boolean")[0] is TokenKind.KW_BOOL
        assert kinds("bool")[0] is TokenKind.KW_BOOL

    def test_keyword_prefix_identifier(self):
        tokens = tokenize("classy")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "classy"


class TestOperators:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("==", TokenKind.EQ),
            ("!=", TokenKind.NE),
            ("<=", TokenKind.LE),
            (">=", TokenKind.GE),
            ("&&", TokenKind.AND),
            ("||", TokenKind.OR),
        ],
    )
    def test_two_char_operators(self, text, kind):
        assert kinds(text)[0] is kind

    def test_two_char_beats_one_char(self):
        assert kinds("= =")[:2] == [TokenKind.ASSIGN, TokenKind.ASSIGN]
        assert kinds("==")[0] is TokenKind.EQ

    def test_single_char_punctuation(self):
        assert kinds("{ } ( ) ; , .")[:-1] == [
            TokenKind.LBRACE,
            TokenKind.RBRACE,
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.SEMI,
            TokenKind.COMMA,
            TokenKind.DOT,
        ]

    def test_arithmetic_operators(self):
        assert kinds("+ - * / %")[:-1] == [
            TokenKind.PLUS,
            TokenKind.MINUS,
            TokenKind.STAR,
            TokenKind.SLASH,
            TokenKind.PERCENT,
        ]


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds("x // comment\ny") == [
            TokenKind.IDENT,
            TokenKind.IDENT,
            TokenKind.EOF,
        ]

    def test_block_comment_skipped(self):
        assert kinds("x /* any { } tokens */ y") == [
            TokenKind.IDENT,
            TokenKind.IDENT,
            TokenKind.EOF,
        ]

    def test_block_comment_spans_lines(self):
        tokens = tokenize("/* a\nb\nc */ x")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].line == 3

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_slash_alone_is_division(self):
        assert kinds("a / b")[1] is TokenKind.SLASH


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  bb\n   c")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)
        assert (tokens[2].line, tokens[2].column) == (3, 4)

    def test_error_position_reported(self):
        with pytest.raises(LexError) as exc:
            tokenize("ok\n  @")
        assert exc.value.line == 2
        assert exc.value.column == 3

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("$")
