"""Round-trip tests for the pretty printer: parse -> print -> parse."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import load, parse, pretty_program
from repro.lang.pretty import pretty_expr, pretty_stmt

EXAMPLE = """
interface Queue { void removeFirst(); int size(); }

class Coalesced implements Queue {
  RefArray items;
  int count = 0;
  Coalesced() { this.items = new RefArray(8); }
  void removeFirst() {
    if (this.count > 0) { this.count = this.count - 1; } else { this.count = 0; }
  }
  int size() { return this.count; }
  synchronized void spin() {
    int i = 0;
    while (i < 3) { i = i + 1; }
    assert i == 3;
    synchronized (this.items) { this.items.set(0, null); }
  }
}

test Seed {
  Coalesced c = new Coalesced();
  c.removeFirst();
  int n = c.size();
}
"""


def normalize(program):
    """Structural fingerprint that ignores node ids and line numbers."""

    def strip(node):
        if isinstance(node, list):
            return [strip(n) for n in node]
        if hasattr(node, "__dataclass_fields__"):
            items = []
            for name, value in sorted(vars(node).items()):
                if name in ("line", "node_id"):
                    continue
                items.append((name, strip(value)))
            return (type(node).__name__, tuple(items))
        return node

    return strip(program.interfaces) + strip(program.classes) + strip(program.tests)


class TestRoundTrip:
    def test_example_round_trips(self):
        program = parse(EXAMPLE)
        printed = pretty_program(program)
        reparsed = parse(printed)
        assert normalize(program) == normalize(reparsed)

    def test_printed_program_still_loads(self):
        program = parse(EXAMPLE)
        load(pretty_program(program))

    def test_idempotent(self):
        once = pretty_program(parse(EXAMPLE))
        twice = pretty_program(parse(once))
        assert once == twice


class TestFragments:
    def test_expr_rendering(self):
        program = parse("class A { void m(int p) { int x = (p + 1) * 2; } }")
        expr = program.classes[0].methods[0].body.stmts[0].init
        assert pretty_expr(expr) == "((p + 1) * 2)"

    def test_stmt_rendering(self):
        program = parse("class A { int f; void m(A q) { q.f = 3; } }")
        stmt = program.classes[0].methods[0].body.stmts[0]
        assert pretty_stmt(stmt) == ["q.f = 3;"]


# ----------------------------------------------------------------------
# Property-based round trip over generated expressions.

_names = st.sampled_from(["a", "b", "c", "p", "q"])


def _expr_source(draw_depth=3):
    leaf = st.one_of(
        st.integers(min_value=0, max_value=999).map(str),
        st.just("true"),
        st.just("false"),
        _names,
    )
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            st.tuples(children, st.sampled_from(["+", "-", "*"]), children).map(
                lambda t: f"({t[0]} {t[1]} {t[2]})"
            ),
            st.tuples(children, st.sampled_from(["<", ">", "=="]), children).map(
                lambda t: f"({t[0]} {t[1]} {t[2]})"
            ),
        ),
        max_leaves=12,
    )


class TestExpressionRoundTripProperty:
    @given(_expr_source())
    @settings(max_examples=80, deadline=None)
    def test_parse_print_parse_stable(self, expr_text):
        source = (
            "class A { void m(int a, int b, int c, int p, int q) "
            "{ bool r = (%s) == 0; } }" % expr_text
        )
        program = parse(source)
        printed = pretty_program(program)
        reparsed = parse(printed)
        assert normalize(program) == normalize(reparsed)
