"""Vector clock and epoch laws (unit + hypothesis properties)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.detect.clock import EPOCH_ZERO, Epoch, VectorClock

clock_dicts = st.dictionaries(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=100),
    max_size=6,
)


class TestVectorClockBasics:
    def test_missing_entries_are_zero(self):
        clock = VectorClock()
        assert clock.time_of(3) == 0

    def test_tick_increments_one_component(self):
        clock = VectorClock()
        clock.tick(2)
        clock.tick(2)
        clock.tick(1)
        assert clock.time_of(2) == 2
        assert clock.time_of(1) == 1
        assert clock.time_of(0) == 0

    def test_join_is_pointwise_max(self):
        a = VectorClock({0: 3, 1: 1})
        b = VectorClock({1: 5, 2: 2})
        a.join(b)
        assert (a.time_of(0), a.time_of(1), a.time_of(2)) == (3, 5, 2)

    def test_copy_is_independent(self):
        a = VectorClock({0: 1})
        b = a.copy()
        b.tick(0)
        assert a.time_of(0) == 1
        assert b.time_of(0) == 2

    def test_leq(self):
        a = VectorClock({0: 1, 1: 2})
        b = VectorClock({0: 2, 1: 2})
        assert a.leq(b)
        assert not b.leq(a)
        assert a.leq(a)


class TestEpoch:
    def test_epoch_leq_vc(self):
        clock = VectorClock({1: 4})
        assert Epoch(1, 4).leq_vc(clock)
        assert Epoch(1, 3).leq_vc(clock)
        assert not Epoch(1, 5).leq_vc(clock)
        assert not Epoch(2, 1).leq_vc(clock)

    def test_zero_epoch_precedes_everything(self):
        assert EPOCH_ZERO.leq_vc(VectorClock())


class TestVectorClockProperties:
    @given(clock_dicts, clock_dicts)
    def test_join_commutative(self, d1, d2):
        a1, b1 = VectorClock(d1), VectorClock(d2)
        a1.join(b1)
        a2, b2 = VectorClock(d2), VectorClock(d1)
        a2.join(b2)
        assert a1 == a2

    @given(clock_dicts, clock_dicts, clock_dicts)
    def test_join_associative(self, d1, d2, d3):
        left = VectorClock(d1)
        mid = VectorClock(d2)
        mid.join(VectorClock(d3))
        left.join(mid)

        right = VectorClock(d1)
        right.join(VectorClock(d2))
        right.join(VectorClock(d3))
        assert left == right

    @given(clock_dicts)
    def test_join_idempotent(self, d):
        a = VectorClock(d)
        a.join(VectorClock(d))
        assert a == VectorClock(d)

    @given(clock_dicts, clock_dicts)
    def test_join_is_upper_bound(self, d1, d2):
        a, b = VectorClock(d1), VectorClock(d2)
        joined = a.copy()
        joined.join(b)
        assert a.leq(joined)
        assert b.leq(joined)

    @given(clock_dicts, clock_dicts, clock_dicts)
    def test_leq_transitive(self, d1, d2, d3):
        a, b, c = VectorClock(d1), VectorClock(d2), VectorClock(d3)
        if a.leq(b) and b.leq(c):
            assert a.leq(c)

    @given(clock_dicts, st.integers(min_value=0, max_value=5))
    def test_tick_strictly_increases(self, d, tid):
        a = VectorClock(d)
        before = a.copy()
        a.tick(tid)
        assert before.leq(a)
        assert not a.leq(before)
