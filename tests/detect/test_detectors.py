"""Scenario tests for the Eraser, FastTrack, and Djit+ detectors."""

import pytest

from repro.detect import (
    DjitDetector,
    EraserDetector,
    FastTrackDetector,
    collect_constant_write_sites,
)
from repro.lang import load
from repro.runtime import Execution, FixedScheduler, RoundRobinScheduler, VM

COUNTER = """
class Counter {
  int count;
  int snapshot;
  void inc() { int t = this.count; this.count = t + 1; }
  synchronized void safeInc() { int t = this.count; this.count = t + 1; }
  int get() { return this.count; }
  synchronized int safeGet() { return this.count; }
  void resetToZero() { this.count = 0; }
  void copy() { this.snapshot = this.count; }
}
test Seed { Counter c = new Counter(); }
"""

ALL_DETECTORS = [EraserDetector, FastTrackDetector, DjitDetector]


def run_concurrent(methods, source=COUNTER, scheduler=None, detectors=None):
    """Run the listed methods concurrently on one shared object."""
    table = load(source)
    vm = VM(table)
    _, env = vm.run_test("Seed")
    receiver = env["c"]
    dets = detectors if detectors is not None else [cls() for cls in ALL_DETECTORS]
    execution = Execution(vm, listeners=tuple(dets))
    for method in methods:
        execution.spawn(
            lambda ctx, m=method: vm.interp.call_method(ctx, receiver, m, [])
        )
    execution.run(scheduler or RoundRobinScheduler())
    return dets, table


class TestWriteWriteRaces:
    @pytest.mark.parametrize("detector_cls", ALL_DETECTORS)
    def test_unsynchronized_writes_race(self, detector_cls):
        dets, _ = run_concurrent(["inc", "inc"], detectors=[detector_cls()])
        assert len(dets[0].races) >= 1
        record = dets[0].races.races[0]
        assert (record.class_name, record.field_name) == ("Counter", "count")

    @pytest.mark.parametrize("detector_cls", ALL_DETECTORS)
    def test_synchronized_writes_do_not_race(self, detector_cls):
        dets, _ = run_concurrent(["safeInc", "safeInc"], detectors=[detector_cls()])
        assert len(dets[0].races) == 0


class TestReadWriteRaces:
    @pytest.mark.parametrize("detector_cls", ALL_DETECTORS)
    def test_read_vs_write_races(self, detector_cls):
        dets, _ = run_concurrent(["get", "inc"], detectors=[detector_cls()])
        assert len(dets[0].races) >= 1

    @pytest.mark.parametrize("detector_cls", [FastTrackDetector, DjitDetector])
    def test_read_read_is_not_a_race(self, detector_cls):
        dets, _ = run_concurrent(["get", "get"], detectors=[detector_cls()])
        assert len(dets[0].races) == 0

    @pytest.mark.parametrize("detector_cls", [FastTrackDetector, DjitDetector])
    def test_locked_read_vs_unlocked_write_races(self, detector_cls):
        # One side holding a lock does not help if the other side is free.
        dets, _ = run_concurrent(["safeGet", "inc"], detectors=[detector_cls()])
        assert len(dets[0].races) >= 1


class TestHappensBefore:
    def test_fork_edge_orders_parent_writes(self):
        # Writes made by the seed (setup) thread must not race with the
        # spawned threads when a ForkEvent is present.
        table = load(COUNTER)
        vm = VM(table)
        detector = FastTrackDetector()
        _, env = vm.run_test("Seed", listeners=(detector,))
        receiver = env["c"]
        execution = Execution(vm, listeners=(detector,))
        execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, receiver, "inc", []), parent=0
        )
        execution.run(RoundRobinScheduler())
        assert len(detector.races) == 0

    def test_missing_fork_edge_reports_setup_race(self):
        table = load(COUNTER)
        vm = VM(table)
        detector = FastTrackDetector()
        _, env = vm.run_test("Seed", listeners=(detector,))
        receiver = env["c"]
        # Seed only allocates; make the main thread write first.
        execution0 = Execution(vm, listeners=(detector,))
        execution0.spawn(lambda ctx: vm.interp.call_method(ctx, receiver, "inc", []))
        execution0.run(RoundRobinScheduler())
        # No parent= edge: the next thread appears unordered.
        execution = Execution(vm, listeners=(detector,))
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, receiver, "inc", []))
        execution.run(RoundRobinScheduler())
        assert len(detector.races) >= 1

    def test_lock_release_acquire_creates_order(self):
        # safeInc ; safeInc through the same monitor is ordered even
        # across threads -> no race on count.
        dets, _ = run_concurrent(["safeInc", "safeInc"])
        for det in dets:
            assert len(det.races) == 0


class TestEraserSpecifics:
    def test_initialization_not_flagged(self):
        # A variable written by one thread then read by the same thread
        # stays EXCLUSIVE: no race.
        dets, _ = run_concurrent(["inc"], detectors=[EraserDetector()])
        assert len(dets[0].races) == 0

    def test_lockset_refinement_keeps_common_lock(self):
        dets, _ = run_concurrent(
            ["safeInc", "safeInc", "safeInc"], detectors=[EraserDetector()]
        )
        assert len(dets[0].races) == 0

    def test_eraser_flags_unordered_but_lock_disjoint(self):
        # Serialized by schedule but no common lock: Eraser still flags
        # (its lockset view is schedule-insensitive) - this is the
        # over-approximation that feeds the paper's "manual" column.
        table = load(COUNTER)
        vm = VM(table)
        _, env = vm.run_test("Seed")
        receiver = env["c"]
        eraser = EraserDetector()
        fasttrack = FastTrackDetector()
        execution = Execution(vm, listeners=(eraser, fasttrack))
        t1 = execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, receiver, "inc", [])
        )
        t2 = execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, receiver, "inc", [])
        )
        execution.run(FixedScheduler([t1] * 50 + [t2] * 50))
        assert len(eraser.races) >= 1
        # FastTrack also reports here because there is genuinely no HB
        # edge between the two threads (no fork edge registered).
        assert len(fasttrack.races) >= 1


class TestBenignClassification:
    def test_constant_reset_race_is_benign(self):
        table = load(COUNTER)
        constant_sites = collect_constant_write_sites(table.program)
        dets, _ = run_concurrent(
            ["resetToZero", "resetToZero"], detectors=[FastTrackDetector()]
        )
        races = dets[0].races.races
        assert races
        assert all(r.is_benign(constant_sites) for r in races)

    def test_lost_update_is_harmful_even_with_equal_values(self):
        # Both threads read 0 and write 1: equal written values, but the
        # sites are not constant writes -> harmful.
        table = load(COUNTER)
        constant_sites = collect_constant_write_sites(table.program)
        dets, _ = run_concurrent(["inc", "inc"], detectors=[FastTrackDetector()])
        write_write = [
            r
            for r in dets[0].races.races
            if r.first.kind == "W" and r.second.kind == "W"
        ]
        assert write_write
        assert all(not r.is_benign(constant_sites) for r in write_write)


class TestArrayAddresses:
    SOURCE = """
    class Buf {
      IntArray data;
      Buf() { this.data = new IntArray(4); }
      void setAt(int i, int v) { this.data.set(i, v); }
    }
    test Seed { Buf c = new Buf(); }
    """

    def test_disjoint_elements_do_not_race(self):
        table = load(self.SOURCE)
        vm = VM(table)
        _, env = vm.run_test("Seed")
        receiver = env["c"]
        detector = FastTrackDetector()
        execution = Execution(vm, listeners=(detector,))
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, receiver, "setAt", [0, 1]))
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, receiver, "setAt", [1, 2]))
        execution.run(RoundRobinScheduler())
        assert len(detector.races) == 0

    def test_same_element_races(self):
        table = load(self.SOURCE)
        vm = VM(table)
        _, env = vm.run_test("Seed")
        receiver = env["c"]
        detector = FastTrackDetector()
        execution = Execution(vm, listeners=(detector,))
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, receiver, "setAt", [2, 1]))
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, receiver, "setAt", [2, 9]))
        execution.run(RoundRobinScheduler())
        assert len(detector.races) == 1
        assert detector.races.races[0].field_name == "elem"


class TestRaceSetDedup:
    def test_static_dedup_counts_dynamic_occurrences(self):
        from repro.detect import AccessInfo, RaceRecord, RaceSet

        record = RaceRecord(
            detector="x",
            class_name="A",
            field_name="f",
            address=(1, "f", None),
            first=AccessInfo(0, 10, 1, "W", 1),
            second=AccessInfo(1, 11, 2, "W", 2),
        )
        again = RaceRecord(
            detector="x",
            class_name="A",
            field_name="f",
            address=(2, "f", None),  # different object, same sites
            first=AccessInfo(0, 11, 5, "W", 1),
            second=AccessInfo(1, 10, 6, "W", 2),
        )
        races = RaceSet()
        assert races.add(record)
        assert not races.add(again)
        assert len(races) == 1
        assert races.dynamic_count == 2
