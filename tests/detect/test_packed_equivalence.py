"""Packed feeds are bit-identical to object feeds, end to end.

The columnar streaming protocol (``feed_packed``) re-implements each
detector's per-event handlers as a batch loop over raw columns.  That
rewrite is only sound if, for every trace, the packed path produces the
*same* race records — not just the same static keys, but identical
AccessInfo payloads and dynamic counts — as delivering the original
event objects through ``on_event``.  These properties check exactly
that on randomly generated MiniJ programs (reusing the generator from
the detector-equivalence suite), then push the guarantee up the stack:
the analyzer produces an identical AnalysisResult from a packed seed
trace, and a whole fuzz run serializes to identical canonical bytes
when repeated.
"""

from hypothesis import given, settings

from repro.detect import DjitDetector, EraserDetector, FastTrackDetector
from repro.fuzz.probes import AdjacencyProbe
from repro.narada.serial import canonical_json, encode_analysis
from repro.trace.columnar import ColumnarRecorder, PackedTrace

from tests.detect.test_detector_equivalence import (
    random_programs,
    run_random_program,
)


def _record_packed(trace) -> PackedTrace:
    """Pack an already-recorded object trace (replay through append)."""
    packed = PackedTrace(trace.test_name)
    for event in trace.events:
        packed.append(event)
    return packed


def _race_payload(race_set):
    """Full per-record content, order-sensitive (not just static keys)."""
    return (
        [
            (
                r.detector, r.class_name, r.field_name, r.address,
                r.first, r.second,
            )
            for r in race_set
        ],
        race_set.dynamic_count,
    )


DETECTORS = (FastTrackDetector, EraserDetector, DjitDetector)


class TestPackedFeedsMatchObjectFeeds:
    @given(random_programs())
    @settings(max_examples=50, deadline=None)
    def test_detectors_identical_on_random_programs(self, case):
        source, workloads, seed = case
        trace, fasttrack, djit, eraser = run_random_program(
            source, workloads, seed
        )
        packed = _record_packed(trace)
        live = {"fasttrack": fasttrack, "djit+": djit, "eraser": eraser}
        for detector_cls in DETECTORS:
            replay = detector_cls()
            replay.feed_packed(packed)
            assert _race_payload(replay.races) == _race_payload(
                live[replay.name].races
            ), f"{replay.name} packed feed diverged from object feed"

    @given(random_programs())
    @settings(max_examples=50, deadline=None)
    def test_adjacency_probe_identical(self, case):
        source, workloads, seed = case
        trace, *_ = run_random_program(source, workloads, seed)
        object_probe = AdjacencyProbe()
        for event in trace.events:
            object_probe.on_event(event)
        packed_probe = AdjacencyProbe()
        packed_probe.feed_packed(_record_packed(trace))
        assert packed_probe.confirmed == object_probe.confirmed


class TestAnalyzerOnPackedTraces:
    def test_analysis_identical_from_packed_seed_traces(self):
        from repro.analysis import analyze_traces
        from repro.runtime import VM
        from repro.subjects import get_subject
        from repro.trace import Recorder

        for key in ("C1", "C5", "C8"):
            table = get_subject(key).load()
            object_traces, packed_traces = [], []
            for test in table.program.tests:
                vm = VM(table, seed=0)
                recorder = Recorder(test.name)
                columnar = ColumnarRecorder(test.name)
                vm.run_test(test.name, listeners=(recorder, columnar))
                object_traces.append(recorder.trace)
                packed_traces.append(columnar.packed)
            via_objects = encode_analysis(analyze_traces(object_traces))
            via_packed = encode_analysis(analyze_traces(packed_traces))
            assert canonical_json(via_packed) == canonical_json(
                via_objects
            ), f"analysis diverged on packed seed traces for {key}"


class TestFuzzDeterminism:
    def test_fuzz_run_is_reproducible_to_the_byte(self):
        from repro.fuzz import RaceFuzzer
        from repro.narada import Narada
        from repro.subjects import get_subject

        subject = get_subject("C1")
        narada = Narada(subject.load())
        synthesis = narada.synthesize_for_class(subject.class_name)
        test = synthesis.tests[0]

        def run():
            fuzzer = RaceFuzzer(narada.table, random_runs=4)
            return fuzzer.fuzz(test)

        first, second = run(), run()
        assert canonical_json(first.to_dict()) == canonical_json(
            second.to_dict()
        )
        # Memo counters are part of the artifact and must reproduce too.
        assert (first.memo_hits, first.memo_misses) == (
            second.memo_hits,
            second.memo_misses,
        )
        assert first.memo_misses > 0
        assert first.trace_events > 0
        assert first.packed_bytes > 0
