"""Property: FastTrack agrees with Djit+ up to epoch compression.

FastTrack is the epoch-compressed version of Djit+.  Flanagan & Freund's
guarantee is "at least one race per racy variable", not "every racy
pair": after reporting a write-write race FastTrack forgets the earlier
write epoch, so a later read may miss a pair Djit+ (full write vector
clocks) still sees.  The faithful properties are therefore:

* every race FastTrack reports, Djit+ reports too (site-pair subset),
* both agree on *which fields* are racy (variable-level equivalence),
* on synchronization-clean runs both report nothing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detect import DjitDetector, FastTrackDetector
from repro.lang import load
from repro.runtime import Execution, RandomScheduler, VM

SOURCE = """
class Cell {
  int a;
  int b;
  void writeA() { this.a = this.a + 1; }
  void readA() { int t = this.a; }
  synchronized void safeWriteA() { this.a = this.a + 1; }
  synchronized void safeReadA() { int t = this.a; }
  void writeB() { this.b = this.b + 1; }
  void mixed() { this.a = this.b; }
  synchronized void safeMixed() { this.b = this.a; }
}
test Seed { Cell c = new Cell(); }
"""

METHODS = [
    "writeA",
    "readA",
    "safeWriteA",
    "safeReadA",
    "writeB",
    "mixed",
    "safeMixed",
]

_table = load(SOURCE)


def run_with_detectors(thread_methods, seed):
    vm = VM(_table)
    _, env = vm.run_test("Seed")
    receiver = env["c"]
    fasttrack = FastTrackDetector()
    djit = DjitDetector()
    execution = Execution(vm, listeners=(fasttrack, djit))
    for methods in thread_methods:
        def body(ctx, methods=methods):
            for method in methods:
                yield from vm.interp.call_method(ctx, receiver, method, [])

        execution.spawn(body)
    execution.run(RandomScheduler(seed))
    return fasttrack, djit


@st.composite
def thread_workloads(draw):
    n_threads = draw(st.integers(min_value=2, max_value=3))
    return [
        draw(st.lists(st.sampled_from(METHODS), min_size=1, max_size=4))
        for _ in range(n_threads)
    ]


class TestFastTrackMatchesDjit:
    @given(thread_workloads(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_fasttrack_races_are_djit_races(self, workloads, seed):
        fasttrack, djit = run_with_detectors(workloads, seed)
        assert fasttrack.races.static_keys() <= djit.races.static_keys()

    @given(thread_workloads(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_same_racy_fields(self, workloads, seed):
        fasttrack, djit = run_with_detectors(workloads, seed)
        ft_fields = {key[:2] for key in fasttrack.races.static_keys()}
        dj_fields = {key[:2] for key in djit.races.static_keys()}
        assert ft_fields == dj_fields

    @given(thread_workloads(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_fully_synchronized_runs_are_race_free(self, workloads, seed):
        safe_only = [
            [m for m in methods if m.startswith("safe")] or ["safeReadA"]
            for methods in workloads
        ]
        fasttrack, djit = run_with_detectors(safe_only, seed)
        assert len(fasttrack.races) == 0
        assert len(djit.races) == 0
