"""Properties tying the detectors to each other and to ground truth.

FastTrack is the epoch-compressed version of Djit+.  Flanagan & Freund's
guarantee is "at least one race per racy variable", not "every racy
pair": after reporting a write-write race FastTrack forgets the earlier
write epoch, so a later read may miss a pair Djit+ (full write vector
clocks) still sees.  The faithful properties are therefore:

* every race FastTrack reports, Djit+ reports too (site-pair subset),
* both agree on *which fields* are racy (variable-level equivalence),
* on synchronization-clean runs both report nothing.

The second half of this module checks those properties — plus an Eraser
lockset property — on *randomly generated* MiniJ programs against an
independent happens-before oracle implemented directly over the recorded
trace (an O(n²) all-pairs vector-clock check that shares no code with
the optimized detectors).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detect import DjitDetector, EraserDetector, FastTrackDetector
from repro.lang import load
from repro.runtime import Execution, RandomScheduler, VM
from repro.trace import Recorder
from repro.trace.events import (
    ForkEvent,
    JoinEvent,
    LockEvent,
    ReadEvent,
    UnlockEvent,
    WriteEvent,
)

SOURCE = """
class Cell {
  int a;
  int b;
  void writeA() { this.a = this.a + 1; }
  void readA() { int t = this.a; }
  synchronized void safeWriteA() { this.a = this.a + 1; }
  synchronized void safeReadA() { int t = this.a; }
  void writeB() { this.b = this.b + 1; }
  void mixed() { this.a = this.b; }
  synchronized void safeMixed() { this.b = this.a; }
}
test Seed { Cell c = new Cell(); }
"""

METHODS = [
    "writeA",
    "readA",
    "safeWriteA",
    "safeReadA",
    "writeB",
    "mixed",
    "safeMixed",
]

_table = load(SOURCE)


def run_with_detectors(thread_methods, seed):
    vm = VM(_table)
    _, env = vm.run_test("Seed")
    receiver = env["c"]
    fasttrack = FastTrackDetector()
    djit = DjitDetector()
    execution = Execution(vm, listeners=(fasttrack, djit))
    for methods in thread_methods:
        def body(ctx, methods=methods):
            for method in methods:
                yield from vm.interp.call_method(ctx, receiver, method, [])

        execution.spawn(body)
    execution.run(RandomScheduler(seed))
    return fasttrack, djit


@st.composite
def thread_workloads(draw):
    n_threads = draw(st.integers(min_value=2, max_value=3))
    return [
        draw(st.lists(st.sampled_from(METHODS), min_size=1, max_size=4))
        for _ in range(n_threads)
    ]


class TestFastTrackMatchesDjit:
    @given(thread_workloads(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_fasttrack_races_are_djit_races(self, workloads, seed):
        fasttrack, djit = run_with_detectors(workloads, seed)
        assert fasttrack.races.static_keys() <= djit.races.static_keys()

    @given(thread_workloads(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_same_racy_fields(self, workloads, seed):
        fasttrack, djit = run_with_detectors(workloads, seed)
        ft_fields = {key[:2] for key in fasttrack.races.static_keys()}
        dj_fields = {key[:2] for key in djit.races.static_keys()}
        assert ft_fields == dj_fields

    @given(thread_workloads(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_fully_synchronized_runs_are_race_free(self, workloads, seed):
        safe_only = [
            [m for m in methods if m.startswith("safe")] or ["safeReadA"]
            for methods in workloads
        ]
        fasttrack, djit = run_with_detectors(safe_only, seed)
        assert len(fasttrack.races) == 0
        assert len(djit.races) == 0


# ======================================================================
# Random programs vs. an independent happens-before ground truth.
#
# The generator keeps each field's locking discipline *consistent*:
# every method touching a "locked" field is synchronized, every method
# touching a "free" field holds no locks.  Consistency matters for the
# Eraser property — under mixed discipline the lockset algorithm has
# well-known false negatives that no superset claim survives.


def hb_oracle(trace):
    """All-pairs vector-clock happens-before oracle over a raw trace.

    Returns ``(racy_fields, ww_racy_fields, racy_pairs)`` where fields
    are ``(class_name, field_name)``, ``ww_racy_fields`` is the subset
    with an unordered cross-thread write-write pair, and ``racy_pairs``
    are ``(class_name, field_name, sorted site pair)`` keys for *every*
    unordered conflicting access pair — deliberately exhaustive where
    the online detectors only compare against last accesses.
    """
    clocks: dict[int, dict[int, int]] = {}
    lock_clocks: dict[int, dict[int, int]] = {}
    history: dict[tuple, list] = {}
    racy_fields, ww_racy_fields, racy_pairs = set(), set(), set()

    def clock(tid):
        vc = clocks.get(tid)
        if vc is None:
            vc = clocks[tid] = {tid: 1}
        return vc

    def join(into, other):
        for tid, time in other.items():
            if time > into.get(tid, 0):
                into[tid] = time

    for event in trace.events:
        kind = event.__class__
        tid = event.thread_id
        if kind is LockEvent:
            released = lock_clocks.get(event.obj)
            if released is not None:
                join(clock(tid), released)
        elif kind is UnlockEvent:
            vc = clock(tid)
            lock_clocks[event.obj] = dict(vc)
            vc[tid] += 1
        elif kind is ForkEvent:
            parent = clock(tid)
            join(clock(event.child_thread), parent)
            parent[tid] += 1
        elif kind is JoinEvent:
            child = clock(event.child_thread)
            join(clock(tid), child)
            child[event.child_thread] += 1
        elif kind is ReadEvent or kind is WriteEvent:
            vc = clock(tid)
            is_write = kind is WriteEvent
            address = event.address()
            for prior_tid, prior_time, prior_write, prior_event in history.get(
                address, ()
            ):
                if prior_tid == tid or not (is_write or prior_write):
                    continue
                if prior_time <= vc.get(prior_tid, 0):
                    continue  # ordered: prior happens-before this access
                field = (event.class_name, event.field_name)
                racy_fields.add(field)
                if is_write and prior_write:
                    ww_racy_fields.add(field)
                sites = tuple(sorted((prior_event.node_id, event.node_id)))
                racy_pairs.add((*field, sites))
            history.setdefault(address, []).append(
                (tid, vc[tid], is_write, event)
            )
    return racy_fields, ww_racy_fields, racy_pairs


@st.composite
def random_programs(draw):
    """A random MiniJ class with per-field consistent lock discipline."""
    n_fields = draw(st.integers(min_value=1, max_value=3))
    disciplines = [draw(st.booleans()) for _ in range(n_fields)]  # True=locked
    methods = []
    method_names = []
    for index, locked in enumerate(disciplines):
        keyword = "synchronized " if locked else ""
        for op, body in (
            ("w", f"this.f{index} = this.f{index} + 1;"),
            ("r", f"int t = this.f{index};"),
        ):
            if not draw(st.booleans()) and len(method_names) > 0:
                continue  # drop some methods so programs vary in shape
            name = f"{op}{index}"
            methods.append(f"  {keyword}void {name}() {{ {body} }}")
            method_names.append(name)
    fields = "\n".join(f"  int f{i};" for i in range(n_fields))
    source = (
        "class Subject {\n"
        + fields + "\n"
        + "\n".join(methods) + "\n"
        + "}\n"
        + "test Seed { Subject s = new Subject(); }\n"
    )
    n_threads = draw(st.integers(min_value=2, max_value=3))
    workloads = [
        draw(st.lists(st.sampled_from(method_names), min_size=1, max_size=5))
        for _ in range(n_threads)
    ]
    seed = draw(st.integers(min_value=0, max_value=100_000))
    return source, workloads, seed


def run_random_program(source, workloads, seed):
    table = load(source)
    vm = VM(table)
    _, env = vm.run_test("Seed")
    receiver = env["s"]
    recorder = Recorder()
    fasttrack = FastTrackDetector()
    djit = DjitDetector()
    eraser = EraserDetector()
    execution = Execution(vm, listeners=(recorder, fasttrack, djit, eraser))
    for methods in workloads:
        def body(ctx, methods=methods):
            for method in methods:
                yield from vm.interp.call_method(ctx, receiver, method, [])

        execution.spawn(body)
    result = execution.run(RandomScheduler(seed))
    assert result.completed
    return recorder.trace, fasttrack, djit, eraser


def _fields(race_set):
    return {key[:2] for key in race_set.static_keys()}


class TestRandomProgramsAgainstOracle:
    @given(random_programs())
    @settings(max_examples=60, deadline=None)
    def test_hb_detectors_match_oracle_fields(self, case):
        source, workloads, seed = case
        trace, fasttrack, djit, _ = run_random_program(source, workloads, seed)
        oracle_fields, _, _ = hb_oracle(trace)
        assert _fields(fasttrack.races) == oracle_fields
        assert _fields(djit.races) == oracle_fields

    @given(random_programs())
    @settings(max_examples=60, deadline=None)
    def test_pair_subset_chain(self, case):
        """FastTrack pairs ⊆ Djit+ pairs ⊆ oracle (all unordered) pairs."""
        source, workloads, seed = case
        trace, fasttrack, djit, _ = run_random_program(source, workloads, seed)
        _, _, oracle_pairs = hb_oracle(trace)
        assert fasttrack.races.static_keys() <= djit.races.static_keys()
        assert djit.races.static_keys() <= oracle_pairs

    @given(random_programs())
    @settings(max_examples=60, deadline=None)
    def test_eraser_covers_write_write_races(self, case):
        """Under consistent discipline Eraser sees every ww-racy field.

        The superset is stated over *write-write* racy fields: Eraser's
        state machine deliberately stays silent in the read-shared state,
        so a single initializing write followed only by cross-thread
        reads (a genuine HB write-read race) is the algorithm's known
        false negative and excluded from the property.
        """
        source, workloads, seed = case
        trace, _, _, eraser = run_random_program(source, workloads, seed)
        _, ww_racy_fields, _ = hb_oracle(trace)
        assert ww_racy_fields <= _fields(eraser.races)
