"""Tests for the generated subject corpus (repro.corpus)."""
