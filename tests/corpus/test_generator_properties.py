"""Property tests: every generated subject is a well-formed program.

100 seeded generations must parse, resolve, and typecheck (``load``
raises on any violation), and the pretty-printed source must round-trip
through the parser to a structurally identical AST — the generator may
only ever emit programs the rest of the toolchain treats as native.
"""

from repro.corpus import CorpusConfig, generate_corpus
from repro.lang import load, parse, pretty_program
from tests.lang.test_pretty import normalize

CONFIG = CorpusConfig(seed=0, count=100)
SUBJECTS = generate_corpus(CONFIG)


class TestGeneratedPrograms:
    def test_every_subject_loads(self):
        """load = parse + class table + resolve + typecheck, in one call."""
        for subject in SUBJECTS:
            table = load(subject.source)
            assert subject.class_name in table.class_names()

    def test_every_subject_has_a_seed_test(self):
        for subject in SUBJECTS:
            program = parse(subject.source)
            assert [t.name for t in program.tests] == ["Seed"]

    def test_pretty_reparse_roundtrip(self):
        for subject in SUBJECTS:
            program = parse(subject.source)
            reparsed = parse(pretty_program(program))
            assert normalize(program) == normalize(reparsed)

    def test_pretty_idempotent(self):
        for subject in SUBJECTS:
            once = pretty_program(parse(subject.source))
            assert pretty_program(parse(once)) == once


class TestOracleShape:
    def test_race_keys_are_canonical_and_unique(self):
        for subject in SUBJECTS:
            verdict = subject.verdict
            for race in verdict.races:
                assert race.methods == tuple(sorted(race.methods))
            assert len(verdict.race_keys()) == len(verdict.races)

    def test_oracle_survives_json_roundtrip(self):
        from repro.corpus import OracleVerdict

        for subject in SUBJECTS:
            data = subject.verdict.to_dict()
            assert OracleVerdict.from_dict(data) == subject.verdict

    def test_deadlock_potential_tracks_the_inversion_template(self):
        for subject in SUBJECTS:
            expected = "lock_order_inversion" in subject.template_keys
            assert subject.verdict.deadlock_potential == expected
