"""End-to-end harness + CLI smoke for the generated corpus."""

import json

import pytest

from repro.cli import main
from repro.corpus import CorpusConfig, run_corpus
from repro.narada import PipelineConfig, PipelineOrchestrator


class TestRunCorpus:
    def test_small_corpus_scores_perfect_recall(self):
        config = CorpusConfig(seed=5, count=4)
        with PipelineOrchestrator(
            jobs=1, cache=None, config=PipelineConfig(random_runs=2)
        ) as orch:
            result = run_corpus(config, orch, batch_size=2)
        assert result.subjects == 4
        assert result.recall == 1.0
        assert result.missed_races == 0
        assert result.problems() == []
        assert sorted(result.digests) == [s.key for s in result.scores]


class TestCorpusCli:
    def test_generate_writes_source_and_oracle_files(self, tmp_path, capsys):
        out = tmp_path / "corpus"
        code = main(["corpus", "generate", "--count", "2", "--out", str(out)])
        assert code == 0
        assert "wrote 2 subject(s)" in capsys.readouterr().out
        source = (out / "G000.minij").read_text()
        assert "class Gen000" in source
        oracle = json.loads((out / "G000.oracle.json").read_text())
        assert oracle["class_name"] == "Gen000"
        assert isinstance(oracle["races"], list)

    def test_run_exits_zero_and_reports_recall(self, capsys):
        code = main(
            ["corpus", "run", "--count", "2", "--runs", "2", "--no-cache"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "recall 1.000" in out

    def test_generate_rejects_unknown_template(self, capsys):
        with pytest.raises(SystemExit, match="unknown template"):
            main(["corpus", "generate", "--count", "1", "--templates", "nope"])
