"""Determinism: same seed + config => byte-identical corpus and results.

The generator's contract (see ``repro.corpus.generator``) is that
subject ``i`` of seed ``s`` depends only on ``(s, i)`` — regeneration,
count extension, and pipeline parallelism must all be invisible.
"""

from repro.corpus import CorpusConfig, generate_corpus, run_corpus
from repro.narada import PipelineConfig, PipelineOrchestrator


def _fingerprint(config: CorpusConfig):
    return [
        (s.key, s.source, s.verdict.to_dict())
        for s in generate_corpus(config)
    ]


class TestGenerationDeterminism:
    def test_regeneration_is_byte_identical(self):
        config = CorpusConfig(seed=7, count=30)
        assert _fingerprint(config) == _fingerprint(config)

    def test_count_extension_preserves_the_prefix(self):
        """Growing --count never perturbs already-generated subjects."""
        short = generate_corpus(CorpusConfig(seed=7, count=10))
        long = generate_corpus(CorpusConfig(seed=7, count=30))
        assert [(s.key, s.source) for s in short] == [
            (s.key, s.source) for s in long[:10]
        ]

    def test_different_seeds_produce_different_corpora(self):
        a = generate_corpus(CorpusConfig(seed=0, count=5))
        b = generate_corpus(CorpusConfig(seed=1, count=5))
        assert [s.source for s in a] != [s.source for s in b]


class TestPipelineDeterminism:
    def test_outcome_digests_identical_across_jobs(self):
        """--jobs 2 must be bit-identical to inline execution."""
        config = CorpusConfig(seed=3, count=3)
        results = {}
        for jobs in (1, 2):
            with PipelineOrchestrator(
                jobs=jobs,
                cache=None,
                config=PipelineConfig(random_runs=2),
            ) as orch:
                results[jobs] = run_corpus(config, orch, batch_size=2)
        assert results[1].digests == results[2].digests
        assert results[1].recall == results[2].recall == 1.0

    def test_batch_size_does_not_change_results(self):
        config = CorpusConfig(seed=3, count=4)
        digests = {}
        for batch_size in (1, 4):
            with PipelineOrchestrator(
                jobs=1,
                cache=None,
                config=PipelineConfig(random_runs=2),
            ) as orch:
                digests[batch_size] = run_corpus(
                    config, orch, batch_size=batch_size
                ).digests
        assert digests[1] == digests[4]
