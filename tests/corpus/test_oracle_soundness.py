"""Oracle soundness: exhaustive exploration agrees with the ground truth.

For every template in isolation and for representative compositions,
synthesize tests through the real pipeline and explore *every* schedule
(within the preemption bound) with the chess machinery.  The union of
observed races must equal the oracle's race set exactly — no lost race
(the oracle never over-claims) and no extra race (it never
under-claims) — and deadlock potential must match observed deadlocks.
"""

import pytest

from repro.corpus import compose_subject, template_names
from repro.corpus.runner import race_keys_of, site_method_map
from repro.fuzz import explore_test
from repro.lang import load
from repro.narada import PipelineConfig, PipelineOrchestrator, SubjectSpec

COMPOSITIONS = [(name,) for name in template_names()] + [
    ("wrong_mutex", "double_checked_init"),
    ("unguarded_reader", "thread_local_receiver", "benign_constant_reset"),
    ("lock_order_inversion", "guarded_stale_publication"),
]


def _explore(subject):
    table = load(subject.source)
    spec = SubjectSpec(
        name=subject.key,
        source=subject.source,
        target_class=subject.class_name,
    )
    with PipelineOrchestrator(
        jobs=1, cache=None, config=PipelineConfig()
    ) as orch:
        report = orch.synthesize(spec)
    sites = site_method_map(table)
    observed = set()
    deadlocked = False
    for test in report.tests:
        result = explore_test(table, test, preemption_bound=2)
        # The claim below is only meaningful over the *complete*
        # bounded schedule space.
        assert result.exhausted, f"{test.name}: schedule cap hit"
        observed |= race_keys_of(result.races, sites)
        deadlocked = deadlocked or bool(result.deadlock_schedules)
    pruned = set()
    assert len(report.verdicts) == len(report.pairs)
    for pair, verdict in zip(report.pairs, report.verdicts):
        if verdict.pruned:
            methods = tuple(
                sorted(
                    (pair.first.method_id()[1], pair.second.method_id()[1])
                )
            )
            pruned.add((pair.field[1], methods))
    return observed, deadlocked, pruned


@pytest.mark.parametrize(
    "keys", COMPOSITIONS, ids=["+".join(keys) for keys in COMPOSITIONS]
)
def test_oracle_matches_exhaustive_exploration(keys):
    subject = compose_subject(list(keys), class_name="Probe", key="P0")
    observed, deadlocked, pruned = _explore(subject)
    assert observed == subject.verdict.race_keys()
    assert deadlocked == subject.verdict.deadlock_potential
    # The static pre-filter's verdicts are judged against the *schedule
    # space itself*: a pruned pair must be unobservable under any
    # bounded-preemption schedule, not merely unclaimed by the oracle.
    assert not pruned & observed, (
        f"statically pruned pair(s) raced under exhaustive "
        f"exploration: {sorted(pruned & observed)}"
    )
