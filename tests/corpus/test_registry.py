"""Registry semantics: corpus subjects coexist with the C1..C9 builtins.

Regression suite for the import-order trap where a dynamically
registered subject arriving before the first lookup made the registry
non-empty and the builtins were silently never loaded.
"""

import sys

import pytest

from repro.corpus import CorpusConfig, register_corpus
from repro.subjects import all_subjects, base, get_subject, register, unregister

BUILTIN_KEYS = {f"C{n}" for n in range(1, 10)}


@pytest.fixture
def corpus_config():
    config = CorpusConfig(seed=11, count=2, key_prefix="T")
    yield config
    for index in range(config.count):
        unregister(f"T{index:03d}")


class TestCorpusRegistration:
    def test_register_corpus_is_idempotent(self, corpus_config):
        first = register_corpus(corpus_config)
        second = register_corpus(corpus_config)
        assert first == second
        assert get_subject("T000").benchmark == "generated"

    def test_double_registration_of_identical_info_is_a_noop(
        self, corpus_config
    ):
        info = register_corpus(corpus_config)[0]
        assert register(info) is get_subject(info.key)

    def test_conflicting_registration_raises(self, corpus_config):
        from dataclasses import replace

        info = register_corpus(corpus_config)[0]
        clash = replace(info, description="something else entirely")
        with pytest.raises(ValueError, match="conflicting"):
            register(clash)

    def test_corpus_and_builtins_coexist(self, corpus_config):
        register_corpus(corpus_config)
        keys = [s.key for s in all_subjects()]
        assert BUILTIN_KEYS <= set(keys)
        assert {"T000", "T001"} <= set(keys)
        assert keys == sorted(keys)

    def test_unregister_removes_only_the_named_subject(self, corpus_config):
        register_corpus(corpus_config)
        unregister("T000")
        with pytest.raises(KeyError):
            get_subject("T000")
        assert get_subject("T001").key == "T001"
        assert BUILTIN_KEYS <= {s.key for s in all_subjects()}


class TestImportOrder:
    def test_corpus_registered_before_builtins_still_exposes_c1(
        self, corpus_config
    ):
        """Simulate a fresh process where register_corpus runs first.

        The builtin subject modules are evicted from ``sys.modules`` so
        ``_ensure_loaded`` genuinely re-imports them; idempotent
        ``register`` makes the eventual restore a no-op.
        """
        import repro.subjects as subjects_pkg

        saved_registry = dict(base._REGISTRY)
        saved_flag = base._BUILTINS_LOADED
        # Evict both the sys.modules entries and the attributes bound on
        # the package object — `from repro.subjects import c1_...` is
        # satisfied from either without re-executing the module.
        evicted = {
            name: sys.modules.pop(name)
            for name in list(sys.modules)
            if name.startswith("repro.subjects.c")
        }
        for name, module in evicted.items():
            attr = name.rsplit(".", 1)[1]
            if getattr(subjects_pkg, attr, None) is module:
                delattr(subjects_pkg, attr)
        base._REGISTRY.clear()
        base._BUILTINS_LOADED = False
        try:
            register_corpus(corpus_config)
            keys = {s.key for s in all_subjects()}
            assert BUILTIN_KEYS <= keys
            assert "T000" in keys
        finally:
            sys.modules.update(evicted)
            for name, module in evicted.items():
                setattr(subjects_pkg, name.rsplit(".", 1)[1], module)
            base._REGISTRY.clear()
            base._REGISTRY.update(saved_registry)
            base._BUILTINS_LOADED = saved_flag
