"""Failure injection: the pipeline degrades gracefully, never crashes.

Seeds that fault, setters that fault during context setup, and racy
methods that spin forever must each surface as structured outcomes
(synthesis_failed / unclean setup / timeout counts), not exceptions.
"""

import pytest

from repro._util.errors import SynthesisError
from repro.analysis import analyze_traces
from repro.context import derive_plans
from repro.fuzz import RaceFuzzer
from repro.lang import load
from repro.pairs import generate_pairs
from repro.runtime import VM, RandomScheduler, RoundRobinScheduler
from repro.synth import SeedCollector, TestRunner, TestSynthesizer
from repro.trace import Recorder


def pipeline(source, seed_test="Seed"):
    table = load(source)
    vm = VM(table)
    recorder = Recorder(seed_test)
    vm.run_test(seed_test, listeners=(recorder,))
    analysis = analyze_traces([recorder.trace])
    pairs = generate_pairs(analysis)
    plans = derive_plans(pairs, analysis, table)
    tests = TestSynthesizer(table).synthesize(plans)
    return table, tests


class TestFaultingSeeds:
    # The seed reaches c.inc() (producing a summary) and faults later,
    # *before* the second invocation some collection will ask for.
    SOURCE = """
    class Counter {
      int count;
      void inc() { int t = this.count; this.count = t + 1; }
      void boom() { this.count = 1 / 0; }
    }
    test Seed {
      Counter c = new Counter();
      c.inc();
      c.boom();
      c.inc();
    }
    """

    def test_collection_beyond_fault_raises_synthesis_error(self):
        table = load(self.SOURCE)
        collector = SeedCollector(VM(table))
        # Ordinal 0 (inc) is reachable; ordinal 2 (the inc after boom)
        # is not.
        capture = collector.collect("Seed", 0)
        assert capture.method == "inc"
        with pytest.raises(SynthesisError):
            collector.collect("Seed", 2)

    def test_fuzzer_marks_synthesis_failed(self):
        table, tests = pipeline(self.SOURCE)
        fuzzer = RaceFuzzer(table, random_runs=2)
        reports = [fuzzer.fuzz(test) for test in tests]
        # The pair seeded by the post-fault inc occurrence cannot be
        # materialized; its report must say so instead of raising.
        assert all(r is not None for r in reports)
        # And at least the reachable inc/inc race still works end to end.
        assert any(r.detected for r in reports if not r.synthesis_failed)


class TestFaultingSetup:
    # The setter works during the seed but faults when the synthesizer
    # replays it against the rearranged (shared) objects: arm() divides
    # by `fuel`, which the seed set but the collected fresh object has 0.
    SOURCE = """
    class Payload { int fuel; }
    class Bomb {
      Payload p;
      int ratio;
      void load(Payload payload) { this.p = payload; }
      void arm() { this.ratio = 100 / this.p.fuel; }
      void tick() { this.ratio = this.ratio + 1; }
    }
    test Seed {
      Bomb b = new Bomb();
      Payload payload = new Payload();
      payload.fuel = 4;
      b.load(payload);
      b.arm();
      b.tick();
    }
    """

    def test_unclean_setup_is_structured(self):
        table, tests = pipeline(self.SOURCE)
        runner = TestRunner(table)
        outcomes = [runner.run(test, RoundRobinScheduler()) for test in tests]
        # Nothing raises; outcomes partition into clean runs and
        # structured failures.
        for outcome in outcomes:
            if outcome.concurrent_result is None:
                assert not outcome.setup_result.clean
            assert outcome.setup_result is not None

    def test_fuzzer_survives_unclean_setups(self):
        table, tests = pipeline(self.SOURCE)
        fuzzer = RaceFuzzer(table, random_runs=2)
        for test in tests:
            report = fuzzer.fuzz(test)  # must not raise
            assert report.random_runs == 2 or report.synthesis_failed


class TestRunawayTests:
    # A method that spins until a flag flips: under a schedule that
    # never runs the flipper, the step budget must end the run.
    SOURCE = """
    class Spinner {
      bool stop;
      int beats;
      void spin() {
        while (!this.stop) { this.beats = this.beats + 1; }
      }
      void halt() { this.stop = true; }
    }
    test Seed {
      Spinner s = new Spinner();
      s.halt();
      s.spin();
    }
    """

    def test_timeouts_counted_not_raised(self):
        from repro.runtime import PreferredScheduler

        table, tests = pipeline(self.SOURCE)
        # The (halt, spin) test shares the receiver; the halt side was
        # collected *before* halt ran, so the shared spinner still has
        # stop == false.  Starving the halter makes spin run forever —
        # the step budget must end the run as a structured timeout.
        mixed = [
            t
            for t in tests
            if {t.plan.left.side.method_id()[1], t.plan.right.side.method_id()[1]}
            == {"spin", "halt"}
        ]
        assert mixed
        test = mixed[0]
        runner = TestRunner(table, max_steps=2_000)
        prepared = runner.prepare(test)
        assert prepared.ok and prepared.thread_ids is not None
        sides = (test.plan.left.side.method_id()[1],
                 test.plan.right.side.method_id()[1])
        spin_tid = prepared.thread_ids[sides.index("spin")]
        outcome = runner.finish(prepared, PreferredScheduler(spin_tid))
        result = outcome.concurrent_result
        assert result is not None
        if vm_still_spinning := result.timed_out:
            assert result.steps == 2_000
        else:
            # The spinner happened to be collected post-halt; either
            # way the outcome is structured, never an exception.
            assert result.completed

    def test_fuzzer_reports_timeouts(self):
        table, tests = pipeline(self.SOURCE)
        fuzzer = RaceFuzzer(table, random_runs=2)
        for test in tests:
            report = fuzzer.fuzz(test)
            assert report.timeouts >= 0  # structured, never raising


class TestDegenerateInputs:
    def test_library_without_races_yields_no_tests(self):
        source = """
        class Calm {
          int x;
          synchronized void set(int v) { this.x = v; }
          synchronized int get() { return this.x; }
        }
        test Seed { Calm c = new Calm(); c.set(3); int v = c.get(); }
        """
        table, tests = pipeline(source)
        assert tests == []

    def test_empty_seed_test(self):
        source = "class A { void m() { } } test Seed { }"
        table, tests = pipeline(source)
        assert tests == []

    def test_seed_never_invoking_target(self):
        source = """
        class A { int x; void m() { this.x = 1; } }
        class B { int y; void n() { this.y = 1; } }
        test Seed { B b = new B(); b.n(); }
        """
        table = load(source)
        vm = VM(table)
        recorder = Recorder("Seed")
        vm.run_test("Seed", listeners=(recorder,))
        analysis = analyze_traces([recorder.trace])
        pairs = generate_pairs(analysis, target_class="A")
        assert pairs == []
