"""Tests for collectObjects, shareObjects, and test materialization."""

import pytest

from repro._util.errors import SynthesisError
from repro.analysis import analyze_traces
from repro.context import derive_plans
from repro.lang import load
from repro.pairs import generate_pairs
from repro.runtime import VM, RoundRobinScheduler
from repro.synth import SeedCollector, TestRunner, TestSynthesizer, materialize
from repro.trace import Recorder

WRAPPER = """
interface Q { void go(); int peek(); }
class Inner implements Q {
  int state;
  void go() { this.state = this.state + 1; }
  int peek() { return this.state; }
}
class Wrapper implements Q {
  Q inner;
  Wrapper(Q q) { this.inner = q; }
  void go() { synchronized (this) { this.inner.go(); } }
  int peek() { synchronized (this) { return this.inner.peek(); } }
}
test Seed {
  Inner i = new Inner();
  Wrapper w = new Wrapper(i);
  w.go();
  int n = w.peek();
}
"""


def build_tests(source=WRAPPER, test_names=("Seed",)):
    table = load(source)
    traces = []
    for name in test_names:
        vm = VM(table)
        recorder = Recorder(name)
        result, _ = vm.run_test(name, listeners=(recorder,))
        assert result.clean
        traces.append(recorder.trace)
    analysis = analyze_traces(traces)
    pairs = generate_pairs(analysis)
    plans = derive_plans(pairs, analysis, table)
    tests = TestSynthesizer(table).synthesize(plans)
    return table, tests


class TestSeedCollector:
    def test_collects_receiver_and_args(self):
        table = load(WRAPPER)
        vm = VM(table)
        collector = SeedCollector(vm)
        # Ordinal 0 is `new Wrapper(i)`: `new Inner()` has no declared
        # constructor, so it produces no client invocation.
        capture = collector.collect("Seed", 0)
        assert capture.class_name == "Wrapper"
        assert capture.method == "Wrapper"
        assert capture.arg_ref(0).class_name == "Inner"

    def test_suspension_preserves_state(self):
        # Collecting before w.go() leaves the inner counter untouched.
        table = load(WRAPPER)
        vm = VM(table)
        collector = SeedCollector(vm)
        capture = collector.collect("Seed", 1)  # w.go()
        assert capture.method == "go"
        wrapper = vm.heap.get(capture.receiver.ref)
        inner = vm.heap.get(wrapper.fields["inner"].ref)
        assert inner.fields["state"] == 0

    def test_each_collection_gets_fresh_objects(self):
        table = load(WRAPPER)
        vm = VM(table)
        collector = SeedCollector(vm)
        first = collector.collect("Seed", 0)
        second = collector.collect("Seed", 0)
        assert first.receiver.ref != second.receiver.ref
        assert first.arg_ref(0).ref != second.arg_ref(0).ref

    def test_out_of_range_ordinal_raises(self):
        table = load(WRAPPER)
        collector = SeedCollector(VM(table))
        with pytest.raises(SynthesisError):
            collector.collect("Seed", 99)

    def test_unknown_test_raises(self):
        table = load(WRAPPER)
        collector = SeedCollector(VM(table))
        with pytest.raises(SynthesisError):
            collector.collect("Nope", 0)


class TestMaterialization:
    def test_shared_slot_binds_to_one_object(self):
        table, tests = build_tests()
        test = next(t for t in tests if t.plan.shared_slot is not None
                    and t.plan.shared_slot.class_name == "Inner"
                    and t.plan.left.setter_calls)
        mat = materialize(test, VM(table))
        runner = TestRunner(table)
        outcome = runner.run_materialized(mat, RoundRobinScheduler())
        assert outcome.clean
        vm = mat.vm
        # Both wrappers constructed by the setup must wrap one Inner.
        wrappers = [
            obj for obj in vm.heap.objects()
            if obj.class_name == "Wrapper" and obj.fields.get("inner") is not None
        ]
        setup_wrappers = [w for w in wrappers]
        inner_refs = {w.fields["inner"].ref for w in setup_wrappers[-2:]}
        assert len(inner_refs) == 1

    def test_render_mentions_threads(self):
        table, tests = build_tests()
        mat = materialize(tests[0], VM(table))
        rendered = mat.render()
        assert "Thread t1" in rendered
        assert "Thread t2" in rendered
        assert "t1.start(); t2.start();" in rendered

    def test_materialization_deterministic(self):
        table, tests = build_tests()
        mat1 = materialize(tests[0], VM(table, seed=5))
        mat2 = materialize(tests[0], VM(table, seed=5))
        assert mat1.render() == mat2.render()

    def test_dedup_covers_multiple_pairs(self):
        table, tests = build_tests()
        covered = sum(len(t.covered_pairs) for t in tests)
        table2, _ = table, None
        # There are at least as many pairs as tests (dedup never loses).
        assert covered >= len(tests)

    def test_unique_test_names(self):
        _, tests = build_tests()
        names = [t.name for t in tests]
        assert len(names) == len(set(names))


class TestRunnerBehaviour:
    def test_run_executes_both_threads(self):
        table, tests = build_tests()
        test = next(t for t in tests if t.plan.left.setter_calls)
        runner = TestRunner(table)
        outcome = runner.run(test, RoundRobinScheduler())
        assert outcome.clean
        assert outcome.thread_ids is not None
        # The shared inner object saw both increments or lost one; in a
        # round-robin schedule of go();go() it must have advanced.
        inners = [
            obj
            for obj in outcome.materialized.vm.heap.objects()
            if obj.class_name == "Inner"
        ]
        assert any(obj.fields["state"] > 0 for obj in inners)

    def test_failed_setup_reported(self):
        # A test whose setter faults must not reach the racy phase.
        source = WRAPPER.replace(
            "Wrapper(Q q) { this.inner = q; }",
            "Wrapper(Q q) { this.inner = q; int bad = 1 / 0; }",
        )
        with pytest.raises(Exception):
            # Seed itself faults now, so building already fails; this
            # guards against silent acceptance of faulting seeds.
            build_tests(source)
