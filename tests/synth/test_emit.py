"""Standalone test emission: synthesized tests as portable MiniJ source."""

import pytest

from repro._util.errors import SynthesisError
from repro.detect import FastTrackDetector
from repro.lang import load
from repro.narada import Narada
from repro.runtime import Execution, RandomScheduler, VM
from repro.subjects import get_subject
from repro.synth.emit import client_invocation_sites, emit_standalone_program

COUNTER = """
class Counter {
  int count;
  void inc() { int t = this.count; this.count = t + 1; }
  int get() { return this.count; }
}
test Seed { Counter c = new Counter(); c.inc(); int n = c.get(); }
"""


def run_standalone(source, test_name, runs=6):
    table = load(source)
    races = set()
    clean = True
    for seed in range(runs):
        vm = VM(table)
        detector = FastTrackDetector()
        test = table.program.test_decl(test_name)
        execution = Execution(vm, listeners=(detector,))
        execution.spawn(
            lambda ctx, body=test.body.stmts: vm.interp.run_client_stmts(
                body, ctx, {}
            )
        )
        result = execution.run(RandomScheduler(seed))
        clean = clean and result.completed and not result.faults
        races |= detector.races.static_keys()
    return races, clean


class TestInvocationSites:
    def test_sites_match_trace_ordinals(self):
        # The static walker must agree with the dynamic client
        # invocation count for every subject seed.
        from repro.trace import Recorder

        for key in ("C1", "C3", "C5", "C9"):
            subject = get_subject(key)
            table = subject.load()
            for test in table.program.tests:
                vm = VM(table)
                recorder = Recorder(test.name)
                vm.run_test(test.name, listeners=(recorder,))
                dynamic = recorder.trace.client_invocations()
                static = client_invocation_sites(test, table)
                assert len(static) == len(dynamic), (key, test.name)
                for site, event in zip(static, dynamic):
                    assert site.method == event.method, (key, test.name)

    def test_builtin_array_calls_not_counted(self):
        source = """
        class A { void m() { } }
        test Seed {
          IntArray buf = new IntArray(4);
          buf.set(0, 1);
          int v = buf.get(0);
          A a = new A();
          a.m();
        }
        """
        table = load(source)
        sites = client_invocation_sites(table.program.tests[0], table)
        assert [s.method for s in sites] == ["m"]

    def test_non_straight_line_rejected(self):
        source = """
        class A { void m() { } }
        test Seed {
          A a = new A();
          if (true) { a.m(); }
        }
        """
        table = load(source)
        with pytest.raises(SynthesisError):
            client_invocation_sites(table.program.tests[0], table)


class TestEmittedPrograms:
    def _emit(self, source_or_table, class_name, count=4):
        narada = Narada(
            source_or_table if isinstance(source_or_table, str) else source_or_table
        )
        report = narada.synthesize_for_class(class_name)
        tests = report.tests[:count]
        return narada, tests, emit_standalone_program(narada.table, tests)

    def test_emitted_program_loads(self):
        _, tests, source = self._emit(COUNTER, "Counter")
        table = load(source)
        for test in tests:
            assert table.program.test_decl(test.name) is not None

    def test_counter_race_reproduces_standalone(self):
        narada, tests, source = self._emit(COUNTER, "Counter")
        inc_test = next(
            t for t in tests if t.plan.left.side.method_id()[1] == "inc"
        )
        races, clean = run_standalone(source, inc_test.name)
        assert clean
        assert any(key[:2] == ("Counter", "count") for key in races)

    def test_c1_figure3_reproduces_standalone(self):
        subject = get_subject("C1")
        narada = Narada(subject.load())
        report = narada.synthesize_for_class(subject.class_name)
        figure3 = next(
            t
            for t in report.tests
            if t.plan.shared_slot is not None
            and t.plan.shared_slot.class_name == "CoalescedWriteBehindQueue"
            and t.plan.full_context
        )
        source = emit_standalone_program(narada.table, [figure3])
        assert "fork {" in source
        races, clean = run_standalone(source, figure3.name)
        assert clean
        assert any(
            key[:2] == ("CoalescedWriteBehindQueue", "count") for key in races
        )

    def test_emitted_matches_materialized_races(self):
        # The standalone form must find the same racy fields the
        # VM-materialized form finds.
        from repro.fuzz import RaceFuzzer

        narada, tests, source = self._emit(COUNTER, "Counter")
        inc_test = next(
            t for t in tests if t.plan.left.side.method_id()[1] == "inc"
        )
        fuzz = RaceFuzzer(narada.table, random_runs=6).fuzz(inc_test)
        materialized_fields = {
            key[:2] for key in fuzz.detected.static_keys()
        }
        standalone_races, _ = run_standalone(source, inc_test.name, runs=10)
        standalone_fields = {key[:2] for key in standalone_races}
        assert materialized_fields <= standalone_fields

    def test_cli_emit_run_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "standalone.minij"
        assert main(
            ["emit", "--subject", "C9", "--count", "2", "-o", str(out_file)]
        ) == 0
        capsys.readouterr()
        code = main(["run", str(out_file), "--runs", "4"])
        out = capsys.readouterr().out
        assert "race(s)" in out
        assert code == 1  # races found => nonzero, CI-style
