"""Suite-wide fixtures."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_artifact_cache(tmp_path, monkeypatch):
    """Keep the persistent pipeline cache out of the real user cache dir.

    Commands and orchestrators default to ``$REPRO_CACHE_DIR`` (or
    ``~/.cache/repro-narada``); tests must neither read a developer's
    warm cache nor leave artifacts behind, so every test gets a private
    throwaway root.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "artifact-cache"))
