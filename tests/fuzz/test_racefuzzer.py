"""Tests for the adjacency probe and the RaceFuzzer analogue."""

from repro.analysis import analyze_traces
from repro.context import derive_plans
from repro.fuzz import AdjacencyProbe, RaceFuzzer
from repro.lang import load
from repro.pairs import generate_pairs
from repro.runtime import VM, Execution, FixedScheduler
from repro.synth import TestSynthesizer
from repro.trace import Recorder

COUNTER = """
class Counter {
  int count;
  void inc() { int t = this.count; this.count = t + 1; }
  synchronized void safeInc() { int t = this.count; this.count = t + 1; }
}
test Seed { Counter c = new Counter(); c.inc(); }
"""


def build(source=COUNTER, test="Seed"):
    table = load(source)
    vm = VM(table)
    recorder = Recorder(test)
    result, _ = vm.run_test(test, listeners=(recorder,))
    assert result.clean
    analysis = analyze_traces([recorder.trace])
    pairs = generate_pairs(analysis)
    plans = derive_plans(pairs, analysis, table)
    tests = TestSynthesizer(table).synthesize(plans)
    return table, tests


class TestAdjacencyProbe:
    def _run(self, methods, schedule):
        table = load(COUNTER)
        vm = VM(table)
        _, env = vm.run_test("Seed")
        receiver = env["c"]
        probe = AdjacencyProbe()
        execution = Execution(vm, listeners=(probe,))
        tids = [
            execution.spawn(
                lambda ctx, m=method: vm.interp.call_method(ctx, receiver, m, [])
            )
            for method in methods
        ]
        execution.run(FixedScheduler([tids[i] for i in schedule]))
        return probe

    def test_interleaved_conflicting_accesses_confirmed(self):
        # Alternate every event: the two writes land back to back.
        probe = self._run(["inc", "inc"], [0, 1] * 40)
        assert probe.confirmed

    def test_serialized_execution_still_adjacent(self):
        # Even serialized, t2's first access on the address directly
        # follows t1's last one with no lock in common: the race
        # manifests (this matches RaceFuzzer's pause-at-access notion).
        probe = self._run(["inc", "inc"], [0] * 40 + [1] * 40)
        assert probe.confirmed

    def test_lock_protected_accesses_not_confirmed(self):
        probe = self._run(["safeInc", "safeInc"], [0, 1] * 60)
        assert not probe.confirmed

    def test_unrelated_addresses_do_not_pair(self):
        source = """
        class Two {
          int a;
          int b;
          void wa() { this.a = 1; }
          void wb() { this.b = 1; }
        }
        test Seed { Two c = new Two(); }
        """
        table = load(source)
        vm = VM(table)
        _, env = vm.run_test("Seed")
        receiver = env["c"]
        probe = AdjacencyProbe()
        execution = Execution(vm, listeners=(probe,))
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, receiver, "wa", []))
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, receiver, "wb", []))
        execution.run(FixedScheduler([1, 2] * 20))
        assert not probe.confirmed


class TestRaceFuzzer:
    def test_detects_and_reproduces_counter_race(self):
        table, tests = build()
        fuzzer = RaceFuzzer(table, random_runs=4)
        inc_tests = [
            t
            for t in tests
            if {t.plan.left.side.method_id()[1], t.plan.right.side.method_id()[1]}
            == {"inc"}
        ]
        assert inc_tests
        report = fuzzer.fuzz(inc_tests[0])
        assert len(report.detected) >= 1
        assert report.reproduced
        assert report.harmful()

    def test_synchronized_methods_produce_no_races(self):
        source = COUNTER.replace("test Seed { Counter c = new Counter(); c.inc(); }",
                                 "test Seed { Counter c = new Counter(); c.safeInc(); }")
        table, tests = build(source)
        fuzzer = RaceFuzzer(table, random_runs=4)
        for test in tests:
            report = fuzzer.fuzz(test)
            assert len(report.detected) == 0

    def test_directed_phase_improves_reproduction(self):
        table, tests = build()
        undirected = RaceFuzzer(table, random_runs=2, directed=False)
        directed = RaceFuzzer(table, random_runs=2, directed=True)
        test = tests[0]
        r1 = undirected.fuzz(test)
        r2 = directed.fuzz(test)
        assert len(r2.reproduced) >= len(r1.reproduced)
        assert r2.directed_attempts >= 0

    def test_report_describe_runs(self):
        table, tests = build()
        report = RaceFuzzer(table, random_runs=2).fuzz(tests[0])
        text = report.describe()
        assert tests[0].name in text


LOOPY = """
class Looper {
  int total;
  void bump(int n) {
    int i = 0;
    while (i < n) {
      int t = this.total;
      this.total = t + 1;
      i = i + 1;
    }
  }
}
test Seed { Looper l = new Looper(); l.bump(400); }
"""


class TestCompressedFuzzPath:
    """The fuzz loop compresses long traces before sweeping them.

    Results must be identical to the uncompressed path (block skipping
    is observationally invisible — DESIGN.md §13); the new report
    counters record how much work compression saved and must survive
    serialization.
    """

    def test_results_identical_with_and_without_compression(self, monkeypatch):
        import repro.fuzz.racefuzzer as racefuzzer_module

        table, tests = build(LOOPY)
        compressed = RaceFuzzer(table, random_runs=3).fuzz(tests[0])
        monkeypatch.setattr(racefuzzer_module, "COMPRESS_MIN_ROWS", 10**9)
        uncompressed = RaceFuzzer(table, random_runs=3).fuzz(tests[0])
        assert sorted(compressed.detected.static_keys()) == sorted(
            uncompressed.detected.static_keys()
        )
        assert compressed.reproduced == uncompressed.reproduced
        assert compressed.trace_events == uncompressed.trace_events
        # The uncompressed run never builds a segment plan.
        assert uncompressed.repeat_blocks == 0
        assert uncompressed.rows_skipped == 0
        assert uncompressed.compressed_rows == uncompressed.trace_events

    def test_counters_populate_and_serialize(self):
        from repro.fuzz.racefuzzer import FuzzReport

        table, tests = build(LOOPY)
        report = RaceFuzzer(table, random_runs=4).fuzz(tests[0])
        assert 0 < report.compressed_rows <= report.trace_events
        assert report.repeat_blocks > 0
        assert report.rows_skipped > 0
        decoded = FuzzReport.from_dict(report.to_dict())
        assert decoded.compressed_rows == report.compressed_rows
        assert decoded.repeat_blocks == report.repeat_blocks
        assert decoded.rows_skipped == report.rows_skipped
