"""Tests for bounded systematic exploration, PCT, and schedule replay."""

from repro.analysis import analyze_traces
from repro.context import derive_plans
from repro.detect import FastTrackDetector
from repro.fuzz import BoundedExplorer, explore_test
from repro.lang import load
from repro.pairs import generate_pairs
from repro.runtime import (
    PCTScheduler,
    RandomScheduler,
    RecordingScheduler,
    VM,
)
from repro.synth import TestRunner, TestSynthesizer
from repro.trace import Recorder

COUNTER = """
class Counter {
  int count;
  void inc() { int t = this.count; this.count = t + 1; }
  synchronized void safeInc() { int t = this.count; this.count = t + 1; }
}
test Seed { Counter c = new Counter(); c.inc(); }
"""

# C4-style: pairs exist (the hidden buffer is touched without *its*
# lock) but the only derivable sharing is the receiver, and the
# synchronized methods then serialize -> tests that can never race.
SAFE = """
class Hidden { int v; }
class Safe {
  Hidden secret;
  Safe() { this.secret = new Hidden(); }
  synchronized void poke() { this.secret.v = this.secret.v + 1; }
}
test Seed { Safe c = new Safe(); c.poke(); }
"""


def synthesize(source):
    table = load(source)
    vm = VM(table)
    recorder = Recorder("Seed")
    vm.run_test("Seed", listeners=(recorder,))
    analysis = analyze_traces([recorder.trace])
    plans = derive_plans(generate_pairs(analysis), analysis, table)
    tests = TestSynthesizer(table).synthesize(plans)
    return table, tests


class TestBoundedExplorer:
    def test_exhaustive_with_bound_two_finds_all_races(self):
        table, tests = synthesize(COUNTER)
        inc_test = next(
            t for t in tests if t.plan.left.side.method_id()[1] == "inc"
        )
        result = explore_test(table, inc_test, preemption_bound=2)
        assert result.exhausted
        assert result.race_count >= 2
        # Every race comes with a replayable schedule certificate.
        for key in result.races.static_keys():
            assert result.first_schedule_for(key) is not None

    def test_bound_zero_finds_serialized_races_only(self):
        # Bound 0 = fully non-preemptive schedules.  The unsynchronized
        # counter race still shows (no HB between serialized threads),
        # and exploration is tiny.
        table, tests = synthesize(COUNTER)
        inc_test = next(
            t for t in tests if t.plan.left.side.method_id()[1] == "inc"
        )
        bounded = BoundedExplorer(table, preemption_bound=0)
        result = bounded.explore(inc_test)
        assert result.exhausted
        assert result.schedules_run <= 4

    def test_monotone_in_bound(self):
        table, tests = synthesize(COUNTER)
        inc_test = next(
            t for t in tests if t.plan.left.side.method_id()[1] == "inc"
        )
        runs = {}
        races = {}
        for bound in (0, 1, 2):
            result = BoundedExplorer(table, preemption_bound=bound).explore(
                inc_test
            )
            assert result.exhausted
            runs[bound] = result.schedules_run
            races[bound] = result.races.static_keys()
        assert runs[0] <= runs[1] <= runs[2]
        assert races[0] <= races[1] <= races[2]

    def test_synchronized_test_explores_clean(self):
        table, tests = synthesize(SAFE)
        result = explore_test(table, tests[0], preemption_bound=2)
        assert result.exhausted
        assert result.race_count == 0
        assert not result.deadlock_schedules
        assert not result.fault_schedules

    def test_schedule_certificate_replays_the_race(self):
        table, tests = synthesize(COUNTER)
        inc_test = next(
            t for t in tests if t.plan.left.side.method_id()[1] == "inc"
        )
        result = explore_test(table, inc_test, preemption_bound=2)
        key = next(iter(result.races.static_keys()))
        schedule = result.first_schedule_for(key)

        from repro.runtime.scheduler import FixedScheduler

        detector = FastTrackDetector()
        runner = TestRunner(table, listeners=(detector,))
        runner.run(inc_test, FixedScheduler(schedule))
        assert key in detector.races.static_keys()

    def test_max_schedules_cap_reported(self):
        table, tests = synthesize(COUNTER)
        inc_test = next(
            t for t in tests if t.plan.left.side.method_id()[1] == "inc"
        )
        result = BoundedExplorer(
            table, preemption_bound=2, max_schedules=3
        ).explore(inc_test)
        assert result.schedules_run == 3
        assert not result.exhausted


class TestRecordingReplay:
    def test_replay_reproduces_races_exactly(self):
        table, tests = synthesize(COUNTER)
        test = tests[0]
        for seed in range(5):
            original = FastTrackDetector()
            recording = RecordingScheduler(RandomScheduler(seed))
            TestRunner(table, listeners=(original,)).run(test, recording)

            replayed = FastTrackDetector()
            TestRunner(table, listeners=(replayed,)).run(
                test, recording.log.replayer()
            )
            assert original.races.static_keys() == replayed.races.static_keys()

    def test_log_length_matches_steps(self):
        table, tests = synthesize(COUNTER)
        recording = RecordingScheduler(RandomScheduler(0))
        outcome = TestRunner(table).run(tests[0], recording)
        assert outcome.concurrent_result is not None
        assert len(recording.log) == outcome.concurrent_result.steps


class TestPCT:
    def test_pct_finds_the_race_quickly(self):
        table, tests = synthesize(COUNTER)
        inc_test = next(
            t for t in tests if t.plan.left.side.method_id()[1] == "inc"
        )
        found_at = None
        for attempt in range(20):
            detector = FastTrackDetector()
            runner = TestRunner(table, listeners=(detector,))
            runner.run(
                inc_test, PCTScheduler(seed=attempt, expected_steps=60)
            )
            if detector.races:
                found_at = attempt
                break
        assert found_at is not None

    def test_pct_deterministic_per_seed(self):
        table, tests = synthesize(COUNTER)
        test = tests[0]

        def run(seed):
            detector = FastTrackDetector()
            TestRunner(table, listeners=(detector,)).run(
                test, PCTScheduler(seed=seed, expected_steps=60)
            )
            return detector.races.static_keys()

        assert run(3) == run(3)

    def test_pct_respects_runnable_set(self):
        scheduler = PCTScheduler(seed=1)
        for _ in range(50):
            assert scheduler.pick([4, 7], 4) in (4, 7)
