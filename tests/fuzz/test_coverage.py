"""Tests for Maple-style interleaving coverage."""

from repro.analysis import analyze_traces
from repro.context import derive_plans
from repro.fuzz.coverage import (
    CoverageGuidedFuzzer,
    InterleavingCoverageProbe,
)
from repro.lang import load
from repro.pairs import generate_pairs
from repro.runtime import Execution, FixedScheduler, VM
from repro.synth import TestSynthesizer
from repro.trace import Recorder

COUNTER = """
class Counter {
  int count;
  void inc() { int t = this.count; this.count = t + 1; }
  synchronized void safeInc() { int t = this.count; this.count = t + 1; }
}
test Seed { Counter c = new Counter(); c.inc(); }
"""


def synthesize(source=COUNTER):
    table = load(source)
    vm = VM(table)
    recorder = Recorder("Seed")
    vm.run_test("Seed", listeners=(recorder,))
    analysis = analyze_traces([recorder.trace])
    plans = derive_plans(generate_pairs(analysis), analysis, table)
    return table, TestSynthesizer(table).synthesize(plans)


class TestProbe:
    def _run(self, methods, schedule):
        table = load(COUNTER)
        vm = VM(table)
        _, env = vm.run_test("Seed")
        receiver = env["c"]
        probe = InterleavingCoverageProbe()
        execution = Execution(vm, listeners=(probe,))
        tids = [
            execution.spawn(
                lambda ctx, m=method: vm.interp.call_method(ctx, receiver, m, [])
            )
            for method in methods
        ]
        execution.run(FixedScheduler([tids[i] for i in schedule]))
        return probe

    def test_interleaved_run_covers_units(self):
        probe = self._run(["inc", "inc"], [0, 1] * 30)
        assert probe.units
        for cls, field_name, pred, succ in probe.units:
            assert (cls, field_name) == ("Counter", "count")
            assert pred > 0 and succ > 0

    def test_units_are_ordered_pairs(self):
        # With asymmetric thread bodies, running one thread first vs the
        # other produces *different* dependency directions — coverage
        # units are ordered, not symmetric conflicts.
        forward = self._run(["inc", "safeInc"], [0] * 30 + [1] * 30).units
        backward = self._run(["inc", "safeInc"], [1] * 30 + [0] * 30).units
        assert forward
        assert backward
        assert forward != backward

    def test_locked_methods_yield_units_but_no_races(self):
        # Coverage counts inter-thread dependencies whether or not they
        # are racy: a monitor-ordered handoff is still an interleaving
        # unit (Maple explores orderings, not just races).
        probe = self._run(["safeInc", "safeInc"], [0, 1] * 40)
        assert probe.units


class TestCoverageGuidedFuzzer:
    def test_saturates_and_finds_races(self):
        table, tests = synthesize()
        inc_test = next(
            t for t in tests if t.plan.left.side.method_id()[1] == "inc"
        )
        fuzzer = CoverageGuidedFuzzer(table, plateau=3, max_runs=30)
        report = fuzzer.fuzz(inc_test)
        assert report.units
        assert len(report.races) >= 1
        # Growth curve is monotone non-decreasing with a flat tail.
        assert report.growth == sorted(report.growth)
        assert report.growth[-1] == report.growth[-2]

    def test_plateau_bounds_effort(self):
        table, tests = synthesize()
        fuzzer = CoverageGuidedFuzzer(table, plateau=2, max_runs=30)
        report = fuzzer.fuzz(tests[0])
        assert report.runs <= 30
        # Tiny tests saturate quickly: far fewer runs than the cap.
        assert report.runs < 30

    def test_deterministic(self):
        table, tests = synthesize()
        fuzzer = CoverageGuidedFuzzer(table, plateau=3, max_runs=20)
        first = fuzzer.fuzz(tests[0])
        second = CoverageGuidedFuzzer(table, plateau=3, max_runs=20).fuzz(
            tests[0]
        )
        assert first.units == second.units
        assert first.runs == second.runs
