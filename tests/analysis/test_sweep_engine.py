"""The fused sweep engine is bit-identical to standalone passes.

The tentpole property of :mod:`repro.analysis.sweep`: for **any**
subset of registered passes, one fused sweep over a packed trace
produces exactly the report fragments the same passes produce when each
sweeps the trace alone.  Fusion shares opcode decode, the per-thread
clock cache, and per-address slots across passes — none of which may
be observable in any pass's output.

Checked on hypothesis-generated MiniJ programs (reusing the
detector-equivalence generator) and on the C1..C9 paper subjects' seed
traces, plus the registry/CLI surface: unknown ``--detectors`` names
must fail with the list of registered passes, and ``interest_union``
must preserve first-seen order (recorder elision depends on membership
only, but determinism keeps traces reproducible).
"""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sweep import (
    SweepStats,
    UnknownPassError,
    create_pass,
    interest_union,
    memo_key,
    registered_passes,
    resolve_pass,
    run_sweep,
)
from repro.trace.compressed import compress_trace
from repro.cli import main
from repro.runtime import VM
from repro.subjects import all_subjects
from repro.trace.columnar import ColumnarRecorder, PackedTrace
from repro.trace.events import LockEvent, ReadEvent, UnlockEvent, WriteEvent

from tests.detect.test_detector_equivalence import (
    random_programs,
    run_random_program,
)

ALL_PASSES = (
    "fasttrack", "eraser", "djit+", "adjacency", "coverage", "goodlock",
    "lockorder",
)


def _record_packed(trace) -> PackedTrace:
    packed = PackedTrace(trace.test_name)
    for event in trace.events:
        packed.append(event)
    return packed


def _fragment(sweep_pass):
    """Canonical report fragment of one pass, for identity comparison."""
    name = sweep_pass.name
    if name in ("fasttrack", "eraser", "djit+"):
        races = sweep_pass.races
        return (
            [
                (
                    r.detector, r.class_name, r.field_name, r.address,
                    r.first, r.second,
                )
                for r in races
            ],
            races.dynamic_count,
        )
    if name == "adjacency":
        return tuple(sorted(sweep_pass.confirmed))
    if name == "coverage":
        return tuple(sorted(sweep_pass.units))
    if name == "goodlock":
        return (tuple(sweep_pass.edges), tuple(sweep_pass.potential))
    if name == "lockorder":
        return tuple(sweep_pass.finish())
    raise AssertionError(f"no fragment extractor for pass {name!r}")


def _sweep_fragments(names, packed, fused: bool):
    passes = tuple(create_pass(name) for name in names)
    if fused:
        run_sweep(passes, packed)
    else:
        for sweep_pass in passes:
            run_sweep((sweep_pass,), packed)
    return {p.name: _fragment(p) for p in passes}


def _compressed_fragments(names, compressed, stats=None):
    passes = tuple(create_pass(name) for name in names)
    run_sweep(passes, compressed, stats=stats)
    return {p.name: _fragment(p) for p in passes}


class TestFusedEqualsStandalone:
    @given(
        random_programs(),
        st.sets(st.sampled_from(ALL_PASSES), min_size=1),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_subset_on_random_programs(self, case, subset):
        source, workloads, seed = case
        trace, *_ = run_random_program(source, workloads, seed)
        packed = _record_packed(trace)
        names = sorted(subset)
        fused = _sweep_fragments(names, packed, fused=True)
        standalone = _sweep_fragments(names, packed, fused=False)
        assert fused == standalone

    @pytest.mark.parametrize(
        "subject", all_subjects(), ids=lambda s: s.key
    )
    def test_full_stack_on_seed_traces(self, subject):
        table = subject.load()
        for test in table.program.tests:
            vm = VM(table, seed=0)
            recorder = ColumnarRecorder(test.name)
            vm.run_test(test.name, listeners=(recorder,))
            packed = recorder.packed
            fused = _sweep_fragments(ALL_PASSES, packed, fused=True)
            standalone = _sweep_fragments(ALL_PASSES, packed, fused=False)
            assert fused == standalone


class TestCompressedEqualsPacked:
    """Sweeping a CompressedTrace is bit-identical to the packed sweep.

    The block-skipping engine (DESIGN.md §13) must be observationally
    invisible for every pass subset: passes with a SummarySpec skip
    converged repeat blocks, ``lockorder`` (no summary) forces the
    row-at-a-time fallback, and either way payloads — including row
    refs, labels, and observed values inside race records — match the
    uncompressed sweep exactly.
    """

    @given(
        random_programs(),
        st.sets(st.sampled_from(ALL_PASSES), min_size=1),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_subset_on_random_programs(self, case, subset):
        source, workloads, seed = case
        trace, *_ = run_random_program(source, workloads, seed)
        packed = _record_packed(trace)
        names = sorted(subset)
        baseline = _sweep_fragments(names, packed, fused=True)
        compressed = _compressed_fragments(names, compress_trace(packed))
        assert baseline == compressed

    def test_every_registered_subset_on_hot_loop(self):
        """All 127 pass subsets on a trace that actually compresses."""
        from tests.trace.test_compressed import record_spin

        packed = record_spin(300)
        compressed = compress_trace(packed)
        assert compressed.stats().ratio >= 3.0
        for size in range(1, len(ALL_PASSES) + 1):
            for subset in combinations(ALL_PASSES, size):
                baseline = _sweep_fragments(subset, packed, fused=True)
                stats = SweepStats()
                over = _compressed_fragments(subset, compressed, stats=stats)
                assert baseline == over, subset
                if "lockorder" in subset:
                    # No SummarySpec: every repeat block must replay.
                    assert stats.rows_skipped == 0, subset
                else:
                    assert stats.rows_skipped > 0, subset

    @pytest.mark.parametrize(
        "subject", all_subjects(), ids=lambda s: s.key
    )
    def test_full_stack_on_seed_traces(self, subject):
        table = subject.load()
        for test in table.program.tests:
            vm = VM(table, seed=0)
            recorder = ColumnarRecorder(test.name)
            vm.run_test(test.name, listeners=(recorder,))
            packed = recorder.packed
            compressed = compress_trace(packed)
            assert compressed.digest() == packed.digest()
            baseline = _sweep_fragments(ALL_PASSES, packed, fused=True)
            over = _compressed_fragments(ALL_PASSES, compressed)
            assert baseline == over


class TestRegistry:
    def test_registered_passes_are_sorted_and_complete(self):
        assert registered_passes() == sorted(ALL_PASSES)

    def test_resolve_known_pass(self):
        for name in ALL_PASSES:
            assert resolve_pass(name).name == name

    def test_unknown_pass_lists_registry(self):
        with pytest.raises(UnknownPassError) as excinfo:
            resolve_pass("helgrind")
        message = str(excinfo.value)
        assert "helgrind" in message
        for name in ALL_PASSES:
            assert name in message

    def test_interest_union_preserves_first_seen_order(self):
        class A:
            interests = (ReadEvent, WriteEvent)

        class B:
            interests = (WriteEvent, LockEvent, UnlockEvent)

        assert interest_union((A, B)) == (
            ReadEvent, WriteEvent, LockEvent, UnlockEvent,
        )
        assert interest_union((A(), B())) == interest_union((A, B))

    def test_memo_key_depends_on_pass_names_and_digest(self):
        packed = PackedTrace("t")
        assert memo_key(("a", "b"), packed) == memo_key(("a", "b"), packed)
        assert memo_key(("a", "b"), packed) != memo_key(("b", "a"), packed)
        assert memo_key(("ab",), packed) != memo_key(("a", "b"), packed)


COUNTER_SRC = """
class Counter {
  int count;
  void inc() { int t = this.count; this.count = t + 1; }
}
test Seed { Counter c = new Counter(); c.inc(); }
"""


class TestCliDetectorSelection:
    def test_unknown_detector_name_fails_with_registry(self, tmp_path):
        path = tmp_path / "counter.minij"
        path.write_text(COUNTER_SRC)
        with pytest.raises(SystemExit) as excinfo:
            main(["run", str(path), "--detectors", "fasttrack,helgrind"])
        message = str(excinfo.value)
        assert "helgrind" in message
        for name in registered_passes():
            assert name in message

    def test_known_detectors_accepted(self, tmp_path, capsys):
        path = tmp_path / "counter.minij"
        path.write_text(COUNTER_SRC)
        assert main(
            ["run", str(path), "--runs", "2", "--detectors", "fasttrack,djit+"]
        ) == 0
        capsys.readouterr()
