"""Focused tests for writeable-entry semantics (the setter database's
raw material) and summary bookkeeping."""

from repro.analysis import analyze_traces, param_path, receiver_path
from repro.lang import load
from repro.runtime import VM
from repro.trace import Recorder


def analysis_for(source, test="Seed"):
    table = load(source)
    vm = VM(table)
    recorder = Recorder(test)
    vm.run_test(test, listeners=(recorder,))
    return analyze_traces([recorder.trace])


class TestWriteableEntries:
    def test_param_rooted_write_entry(self):
        # m assigns one parameter's field from another parameter.
        source = """
        class Box { Item content; }
        class Item { }
        class Filler {
          void fill(Box box, Item item) { box.content = item; }
        }
        test Seed {
          Filler f = new Filler();
          Box b = new Box();
          Item i = new Item();
          f.fill(b, i);
        }
        """
        analysis = analysis_for(source)
        fill = analysis.for_method("Filler", "fill")[0]
        entries = [(w.lhs, w.rhs) for w in fill.writeables]
        assert (param_path(1, "content"), param_path(2)) in entries

    def test_rand_value_never_writeable(self):
        source = """
        class X { }
        class A {
          X slot;
          void scramble() { this.slot = rand(); }
        }
        test Seed { A a = new A(); a.scramble(); }
        """
        analysis = analysis_for(source)
        scramble = analysis.for_method("A", "scramble")[0]
        assert scramble.writeables == []
        write = scramble.accesses[0]
        assert not write.writeable
        assert write.unprotected  # still an unprotected write

    def test_primitive_write_not_writeable(self):
        source = """
        class A {
          int n;
          void set(int v) { this.n = v; }
        }
        test Seed { A a = new A(); a.set(4); }
        """
        analysis = analysis_for(source)
        setter = analysis.for_method("A", "set")[0]
        assert setter.writeables == []
        assert setter.accesses[0].unprotected

    def test_return_class_recorded(self):
        source = """
        class Inner { }
        class Factory {
          Inner make() { return new Inner(); }
        }
        test Seed { Factory f = new Factory(); Inner i = f.make(); }
        """
        analysis = analysis_for(source)
        make = analysis.for_method("Factory", "make")[0]
        assert make.return_class == "Inner"

    def test_self_referential_write(self):
        # x.f := x — both sides are the receiver.
        source = """
        class Node {
          Node next;
          void selfLoop() { this.next = this; }
        }
        test Seed { Node n = new Node(); n.selfLoop(); }
        """
        analysis = analysis_for(source)
        loop = analysis.for_method("Node", "selfLoop")[0]
        entries = [(w.lhs, w.rhs) for w in loop.writeables]
        assert (receiver_path("next"), receiver_path()) in entries


class TestSummaryBookkeeping:
    def test_faulted_invocation_still_summarized(self):
        source = """
        class A {
          int x;
          void boom() { this.x = 5; this.x = 1 / 0; }
        }
        test Seed { A a = new A(); a.boom(); }
        """
        analysis = analysis_for(source)
        boom = analysis.for_method("A", "boom")[0]
        assert boom.faulted
        # The write before the fault was still recorded.
        assert any(a.is_write and a.field_name == "x" for a in boom.accesses)

    def test_ordinals_count_client_invocations(self):
        source = """
        class A { void m() { } void n() { } }
        test Seed { A a = new A(); a.m(); a.n(); a.m(); }
        """
        analysis = analysis_for(source)
        ordinals = [(s.method, s.ordinal) for s in analysis]
        assert ordinals == [("m", 0), ("n", 1), ("m", 2)]

    def test_describe_renders(self):
        source = """
        class A {
          int x;
          void m(A other) { this.x = other.x; }
        }
        test Seed { A a = new A(); A b = new A(); a.m(b); }
        """
        analysis = analysis_for(source)
        text = analysis.for_method("A", "m")[0].describe()
        assert "A.m" in text
        assert "unprot" in text

    def test_merge_combines_results(self):
        from repro.analysis import AnalysisResult

        source = "class A { void m() { } } test Seed { A a = new A(); a.m(); }"
        first = analysis_for(source)
        second = analysis_for(source)
        merged = first.merge(second)
        assert len(merged) == len(first) + len(second)
        assert merged.methods_seen() == {("A", "m")}
