"""Property-based validity checks for the trace analysis.

The central soundness claim behind synthesis is that access paths mean
what they say: if the analyzer reports an access at path
``Ithis.f1...fk.f``, then walking ``f1...fk`` from the invocation's
receiver in the *concrete* heap at access time reaches the accessed
object.  We validate this by replaying the trace alongside a concrete
shadow interpreter.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_traces
from repro.analysis.paths import RECEIVER
from repro.lang import load
from repro.runtime import VM
from repro.runtime.values import ObjRef
from repro.trace import Recorder
from repro.trace.events import AccessEvent, ReadEvent, WriteEvent

CHAIN_SOURCE = """
class Leaf { int datum; }
class Mid { Leaf leaf; void setLeaf(Leaf l) { this.leaf = l; } }
class Root {
  Mid mid;
  Leaf direct;
  void setMid(Mid m) { this.mid = m; }
  void setDirect(Leaf l) { this.direct = l; }
  void touchDeep() { this.mid.leaf.datum = this.mid.leaf.datum + 1; }
  void touchDirect() { this.direct.datum = 7; }
  synchronized void touchLocked() { this.direct.datum = 9; }
}
test Seed {
  Leaf l1 = new Leaf();
  Mid m1 = new Mid();
  m1.setLeaf(l1);
  Root r = new Root();
  r.setMid(m1);
  r.setDirect(new Leaf());
  r.touchDeep();
  r.touchDirect();
  r.touchLocked();
}
"""


def analyzed(source):
    table = load(source)
    vm = VM(table)
    recorder = Recorder("Seed")
    result, _ = vm.run_test("Seed", listeners=(recorder,))
    assert result.clean
    return vm, recorder.trace, analyze_traces([recorder.trace])


def concrete_field_states(trace):
    """Replay the trace: label -> {ref: {field: value}} before the event."""
    states = {}
    heap: dict[int, dict[str, object]] = {}
    for event in trace:
        if isinstance(event, AccessEvent):
            states[event.label] = {
                ref: dict(fields) for ref, fields in heap.items()
            }
        if isinstance(event, (ReadEvent, WriteEvent)):
            heap.setdefault(event.obj, {})[event.field_name] = event.value
    return states


class TestPathValidity:
    def test_paths_resolve_to_accessed_object(self):
        vm, trace, analysis = analyzed(CHAIN_SOURCE)
        states = concrete_field_states(trace)
        label_to_event = {
            e.label: e for e in trace if isinstance(e, AccessEvent)
        }
        checked = 0
        for summary in analysis:
            for access in summary.accesses:
                if access.access_path is None:
                    continue
                if access.access_path.root != RECEIVER:
                    continue
                event = label_to_event[access.label]
                # Walk the owner chain from the receiver in the concrete
                # pre-access heap.
                current = summary.receiver_ref
                ok = True
                for field_name in access.access_path.owner().fields:
                    value = states[access.label].get(current, {}).get(field_name)
                    if not isinstance(value, ObjRef):
                        ok = False
                        break
                    current = value.ref
                if ok:
                    assert current == event.obj, (
                        summary.method,
                        str(access.access_path),
                    )
                    checked += 1
        assert checked >= 5

    def test_deep_access_path_depth(self):
        _, _, analysis = analyzed(CHAIN_SOURCE)
        deep = analysis.for_method("Root", "touchDeep")[0]
        writes = [a for a in deep.accesses if a.is_write]
        assert writes
        assert str(writes[0].access_path) == "Ithis.mid.leaf.datum"
        assert writes[0].owner_classes == ("Root", "Mid", "Leaf")

    def test_locked_vs_unlocked_protection(self):
        _, _, analysis = analyzed(CHAIN_SOURCE)
        direct = analysis.for_method("Root", "touchDirect")[0]
        locked = analysis.for_method("Root", "touchLocked")[0]
        datum_write = [a for a in direct.accesses if a.field_name == "datum"][0]
        locked_write = [a for a in locked.accesses if a.field_name == "datum"][0]
        assert datum_write.unprotected
        # Paper semantics: the receiver's monitor does not protect the
        # leaf object -> still unprotected even in the locked method.
        assert locked_write.unprotected


class TestSeedPermutationStability:
    BASE_CALLS = [
        "s.put(i);",
        "int n = s.size();",
        "Item got = s.take();",
        "s.put(i);",
    ]
    SOURCE_PREFIX = """
    class Item { int payload; }
    class Store {
      int count;
      Item slot;
      void put(Item e) { this.slot = e; this.count = this.count + 1; }
      int size() { return this.count; }
      Item take() { this.count = this.count - 1; return this.slot; }
    }
    """

    @given(st.permutations(BASE_CALLS))
    @settings(max_examples=24, deadline=None)
    def test_pairs_independent_of_seed_statement_order(self, calls):
        # All permutations execute every method at least once on live
        # objects, so the (method, method, field) pair set is stable.
        from repro.pairs import generate_pairs

        source = (
            self.SOURCE_PREFIX
            + "test Seed { Store s = new Store(); Item i = new Item(); "
            + " ".join(calls)
            + " }"
        )
        _, _, analysis = analyzed(source)
        pairs = {p.static_id() for p in generate_pairs(analysis)}
        baseline_source = (
            self.SOURCE_PREFIX
            + "test Seed { Store s = new Store(); Item i = new Item(); "
            + " ".join(self.BASE_CALLS)
            + " }"
        )
        _, _, baseline_analysis = analyzed(baseline_source)
        baseline = {p.static_id() for p in generate_pairs(baseline_analysis)}
        assert pairs == baseline
