"""The paper's worked examples, §3.1.1 (Fig. 8 / Table 1) and §3.2.

These tests pin our analyzer to the exact ``A`` and ``D`` values the
paper derives for its running example:

    A : {4 -> (false,false), 5 -> (false,true), 6 -> (true,false)}
    D : {4 -> {⊥ ↢ I1.x}, 5 -> {I1.x.o ↢ ⊥}, 6 -> {I1.y ↢ I2}}

(The paper numbers the receiver I1 and the first parameter I2; we name
them Ithis and I1 — the structure is identical.)
"""

from repro.analysis import analyze_traces, param_path, receiver_path
from repro.lang import load
from repro.runtime import VM
from repro.trace import Recorder

FIG8_SOURCE = """
class X { Opaque o; }
class Y { }
class A {
  X x;
  Y y;
  A() { this.x = new X(); }
  void foo(Y y) {
    synchronized (this) {
      A b = this;
      X t = b.x;
      t.o = rand();
      b.y = y;
    }
  }
}
test Seed {
  A a = new A();
  Y y = new Y();
  a.foo(y);
}
"""


def summaries_for(source, test="Seed"):
    table = load(source)
    vm = VM(table)
    recorder = Recorder(test)
    result, _ = vm.run_test(test, listeners=(recorder,))
    assert result.clean, result.faults
    return analyze_traces([recorder.trace])


class TestFig8:
    def get_foo(self):
        analysis = summaries_for(FIG8_SOURCE)
        foos = analysis.for_method("A", "foo")
        assert len(foos) == 1
        return foos[0]

    def test_three_accesses_in_foo(self):
        foo = self.get_foo()
        assert [a.kind for a in foo.accesses] == ["R", "W", "W"]
        assert [a.field_name for a in foo.accesses] == ["x", "o", "y"]

    def test_access_projection_matches_paper(self):
        foo = self.get_foo()
        read_x, write_o, write_y = foo.accesses
        # Label 4 in the paper: read of b.x — neither writeable (a read)
        # nor unprotected (the receiver's monitor is held).
        assert foo.access_projection[read_x.label] == (False, False)
        # Label 5: t.o := rand() — not writeable (rand is NC), but
        # unprotected (no lock held on the object t points to).
        assert foo.access_projection[write_o.label] == (False, True)
        # Label 6: b.y := y — writeable (both sides controllable) but
        # protected (monitor of b is held).
        assert foo.access_projection[write_y.label] == (True, False)

    def test_access_summaries_match_paper(self):
        foo = self.get_foo()
        read_x, write_o, write_y = foo.accesses
        assert foo.summaries[read_x.label] == {(None, receiver_path("x"))}
        assert foo.summaries[write_o.label] == {(receiver_path("x", "o"), None)}
        assert foo.summaries[write_y.label] == {(receiver_path("y"), param_path(1))}

    def test_unprotected_access_path_is_receiver_x_o(self):
        # §3.2: "the unprotected access at label 5 is I1.x.o".
        foo = self.get_foo()
        unprotected = foo.unprotected_accesses()
        assert len(unprotected) == 1
        assert unprotected[0].access_path == receiver_path("x", "o")
        assert unprotected[0].field_id() == ("X", "o")

    def test_writeable_entry_for_label_6(self):
        foo = self.get_foo()
        writes = [w for w in foo.writeables if w.via == "write"]
        assert len(writes) == 1
        assert writes[0].lhs == receiver_path("y")
        assert writes[0].rhs == param_path(1)


FIG13_SOURCE = """
class X { Opaque o; }
class Y { }
class Z {
  X w;
  void baz(X x) { this.w = x; }
}
class A {
  X x;
  Y y;
  void foo(Y y) {
    synchronized (this) {
      A b = this;
      X t = b.x;
      t.o = rand();
      b.y = y;
    }
  }
  void bar(Z z) { this.x = z.w; }
}
test Seed {
  Z z = new Z();
  X x = new X();
  z.baz(x);
  A a = new A();
  a.bar(z);
  Y y = new Y();
  a.foo(y);
}
"""


class TestFig13:
    def get_analysis(self):
        return summaries_for(FIG13_SOURCE)

    def test_bar_detects_writeable_assignment_to_A_x(self):
        # §3.3: "analyzing the execution trace of bar will detect the
        # presence of a writeable assignment to A.x, i.e. the
        # corresponding D will have (Ithis.x ↢ Iz.w)".
        analysis = self.get_analysis()
        bar = analysis.for_method("A", "bar")[0]
        entries = [(w.lhs, w.rhs) for w in bar.writeables]
        assert (receiver_path("x"), param_path(1, "w")) in entries

    def test_baz_detects_writeable_assignment_to_Z_w(self):
        analysis = self.get_analysis()
        baz = analysis.for_method("Z", "baz")[0]
        entries = [(w.lhs, w.rhs) for w in baz.writeables]
        assert (receiver_path("w"), param_path(1)) in entries

    def test_foo_unprotected_access_still_found(self):
        analysis = self.get_analysis()
        foo = analysis.for_method("A", "foo")[0]
        unprotected = foo.unprotected_accesses()
        assert [a.access_path for a in unprotected] == [receiver_path("x", "o")]


class TestSrcPrecision:
    def test_reallocation_does_not_break_parameter_identity(self):
        # §3.2's motivating snippet: y := z; z := alloc; x := y.f — the
        # read of y.f must resolve to the *parameter* object even though
        # the local z was re-bound in between.  With concrete traces the
        # read's owner simply is the entry object.
        source = """
        class F { Opaque g; }
        class A {
          F keep;
          void foo(F z) {
            F y = z;
            z = new F();
            Opaque x = y.g;
          }
        }
        test Seed {
          A a = new A();
          F f = new F();
          a.foo(f);
        }
        """
        analysis = summaries_for(source)
        foo = analysis.for_method("A", "foo")[0]
        reads = [a for a in foo.accesses if a.kind == "R" and a.field_name == "g"]
        assert len(reads) == 1
        assert reads[0].access_path == param_path(1, "g")

    def test_library_alloc_is_not_controllable(self):
        source = """
        class Inner { int v; }
        class A {
          Inner cache;
          void refresh() {
            this.cache = new Inner();
            this.cache.v = 1;
          }
        }
        test Seed { A a = new A(); a.refresh(); }
        """
        analysis = summaries_for(source)
        refresh = analysis.for_method("A", "refresh")[0]
        # The write installing the fresh Inner is not writeable (NC rhs).
        install = [a for a in refresh.accesses if a.field_name == "cache" and a.is_write]
        assert install and not install[0].writeable
        # The write to the freshly allocated object's field is NOT
        # unprotected: its owner is not controllable.
        inner_writes = [a for a in refresh.accesses if a.field_name == "v"]
        assert inner_writes and not inner_writes[0].unprotected

    def test_locked_on_different_object_is_unprotected(self):
        # The paper's conservative definition: holding *some* lock does
        # not protect an access unless it is the owner's monitor.
        source = """
        class Inner { int v; }
        class A {
          Inner inner;
          Object mutex;
          A(Inner i) { this.inner = i; this.mutex = this; }
          void touch() {
            synchronized (this.mutex) { this.inner.v = 7; }
          }
        }
        test Seed {
          Inner i = new Inner();
          A a = new A(i);
          a.touch();
        }
        """
        analysis = summaries_for(source)
        touch = analysis.for_method("A", "touch")[0]
        writes = [a for a in touch.accesses if a.field_name == "v"]
        assert writes and writes[0].unprotected

    def test_return_rule_exposes_wrapped_argument(self):
        # Fig. 9 return rule: foo(x,y) { x.f := y; w := alloc; w.z := x;
        # return w; } yields {Iret.z.f ↢ Iy, Iret.z ↢ Ix}.
        source = """
        class Box { Item f; }
        class Item { }
        class Wrapper { Box z; }
        class Factory {
          Wrapper make(Box x, Item y) {
            x.f = y;
            Wrapper w = new Wrapper();
            w.z = x;
            return w;
          }
        }
        test Seed {
          Factory fa = new Factory();
          Box b = new Box();
          Item i = new Item();
          Wrapper w = fa.make(b, i);
        }
        """
        from repro.analysis import return_path

        analysis = summaries_for(source)
        make = analysis.for_method("Factory", "make")[0]
        return_entries = {
            (w.lhs, w.rhs) for w in make.writeables if w.via == "return"
        }
        assert (return_path("z"), param_path(1)) in return_entries
        assert (return_path("z", "f"), param_path(2)) in return_entries
