"""Unit tests for the evaluation table renderers."""

from repro.narada import Narada
from repro.report import (
    FIG14_BUCKETS,
    figure14_distribution,
    format_figure14,
    format_table3,
    format_table4,
    format_table5,
)
from repro.report.tables import _bucket
from repro.subjects import all_subjects, get_subject


def c8_rows():
    subject = get_subject("C8")
    narada = Narada(subject.load())
    report = narada.synthesize_for_class(subject.class_name)
    detection = narada.detect(report, random_runs=3)
    return [(subject, report)], [(subject, detection)]


class TestBuckets:
    def test_bucket_boundaries(self):
        assert _bucket(0) == "0"
        assert _bucket(1) == "1"
        assert _bucket(2) == "2"
        assert _bucket(3) == "3-5"
        assert _bucket(5) == "3-5"
        assert _bucket(6) == "5-10"
        assert _bucket(10) == "5-10"
        assert _bucket(11) == ">10"
        assert _bucket(500) == ">10"

    def test_buckets_cover_headers(self):
        for n in range(0, 50):
            assert _bucket(n) in FIG14_BUCKETS


class TestTable3:
    def test_every_subject_listed(self):
        text = format_table3(all_subjects())
        for subject in all_subjects():
            assert subject.key in text
            assert subject.class_name in text
        assert "hazelcast" in text


class TestTable4:
    def test_renders_measured_and_paper_columns(self):
        synth_rows, _ = c8_rows()
        text = format_table4(synth_rows)
        assert "C8" in text
        # paper reference column: 4 pairs / 4 tests / 5.8 s.
        assert "4/4/5.8" in text
        assert "Total" in text
        assert "466/101/201.3" in text


class TestTable5:
    def test_renders_detection_columns(self):
        _, det_rows = c8_rows()
        text = format_table5(det_rows)
        assert "C8" in text
        assert "4/4/0/0/0" in text  # the paper's C8 row
        assert "307/187/72/44/4" in text

    def test_totals_are_sums(self):
        _, det_rows = c8_rows()
        detection = det_rows[0][1]
        text = format_table5(det_rows)
        total_line = [l for l in text.splitlines() if l.startswith("Total")][0]
        assert str(detection.detected) in total_line


class TestFigure14:
    def test_percentages_per_class_sum_to_100(self):
        _, det_rows = c8_rows()
        for row in figure14_distribution(det_rows):
            assert abs(sum(row.percentages.values()) - 100.0) < 1e-6

    def test_render_contains_all_buckets(self):
        _, det_rows = c8_rows()
        text = format_figure14(det_rows)
        for bucket in FIG14_BUCKETS:
            assert bucket in text

    def test_empty_detection_handled(self):
        from repro.narada.pipeline import DetectionReport

        subject = get_subject("C8")
        empty = DetectionReport(class_name="C8")
        rows = figure14_distribution([(subject, empty)])
        assert sum(rows[0].percentages.values()) == 0.0 or True
        # No tests -> no division-by-zero crash.
        format_figure14([(subject, empty)])
