"""Tests for the deadlock-test synthesis pipeline (OOPSLA'14 sibling)."""

import pytest

from repro.deadlock import (
    DeadlockPipeline,
    GoodLockDetector,
    LockOrderAnalyzer,
    generate_deadlock_pairs,
)
from repro.lang import load
from repro.runtime import Execution, FixedScheduler, VM
from repro.trace import Recorder

TRANSFER = """
class Account {
  int balance;
  Account other;
  Account(int start) { this.balance = start; }
  void setPartner(Account partner) { this.other = partner; }
  synchronized void transferOut(int amount) {
    this.balance = this.balance - amount;
    this.other.deposit(amount);
  }
  synchronized void deposit(int amount) {
    this.balance = this.balance + amount;
  }
  synchronized int read() { return this.balance; }
}
test Seed {
  Account a = new Account(100);
  Account b = new Account(100);
  a.setPartner(b);
  b.setPartner(a);
  a.transferOut(10);
  b.deposit(5);
  int n = a.read();
}
"""

ORDERED = """
class Bank {
  Account low;
  Account high;
  void setAccounts(Account lo, Account hi) {
    this.low = lo;
    this.high = hi;
  }
  /* Total order: always low before high -> no deadlock possible. */
  void transfer(int amount) {
    synchronized (this.low) {
      synchronized (this.high) {
        this.low.balance = this.low.balance - amount;
        this.high.balance = this.high.balance + amount;
      }
    }
  }
}
class Account { int balance; }
test Seed {
  Bank bank = new Bank();
  Account x = new Account();
  Account y = new Account();
  bank.setAccounts(x, y);
  bank.transfer(3);
}
"""


def lock_summaries(source):
    table = load(source)
    traces = []
    for test in table.program.tests:
        vm = VM(table)
        recorder = Recorder(test.name)
        vm.run_test(test.name, listeners=(recorder,))
        traces.append(recorder.trace)
    return table, LockOrderAnalyzer().analyze_all(traces)


class TestLockOrderAnalysis:
    def test_nested_acquisition_extracted_with_paths(self):
        _, summaries = lock_summaries(TRANSFER)
        transfer = [s for s in summaries if s.method == "transferOut"]
        assert transfer
        edges = transfer[0].edges
        assert len(edges) == 1
        edge = edges[0]
        assert str(edge.held_path) == "Ithis"
        assert str(edge.acquired_path) == "Ithis.other"
        assert edge.class_pair() == ("Account", "Account")
        assert edge.acquired_chain == ("Account", "Account")

    def test_flat_locking_yields_no_edges(self):
        _, summaries = lock_summaries(TRANSFER)
        deposit = [s for s in summaries if s.method == "deposit"]
        assert deposit and not deposit[0].edges

    def test_pairs_found_for_opposite_orders(self):
        _, summaries = lock_summaries(TRANSFER)
        pairs = generate_deadlock_pairs(summaries)
        assert len(pairs) == 1
        assert pairs[0].first.method_id() == ("Account", "transferOut")


class TestSynthesisAndConfirmation:
    def test_classic_transfer_deadlock_confirmed(self):
        pipeline = DeadlockPipeline(TRANSFER)
        report = pipeline.synthesize()
        assert len(report.tests) == 1
        plan = report.tests[0].plan
        # Crossed sharing: each side's partner is the other's receiver.
        assert plan.left.racy_call.receiver is not plan.right.racy_call.receiver
        confirms = pipeline.confirm(report, random_runs=6)
        assert confirms[0].confirmed

    def test_lock_ordered_bank_synthesizes_nothing(self):
        pipeline = DeadlockPipeline(ORDERED)
        report = pipeline.synthesize()
        # transfer's nested edge exists but its reverse never does: the
        # class pair (Account, Account) pairs with itself... verify the
        # discipline: the single edge self-pairs only if both paths are
        # usable AND crossed sharing derives.  With the total order in
        # one method, the crossed test still serializes -> must not
        # confirm a deadlock.
        confirms = pipeline.confirm(report, random_runs=6)
        assert all(not c.confirmed for c in confirms)


class TestGoodLock:
    def _run(self, schedule):
        table = load(TRANSFER)
        vm = VM(table)
        _, env = vm.run_test("Seed")
        a, b = env["a"], env["b"]
        detector = GoodLockDetector()
        execution = Execution(vm, listeners=(detector,))
        t1 = execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, a, "transferOut", [1])
        )
        t2 = execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, b, "transferOut", [1])
        )
        result = execution.run(FixedScheduler(
            [t1 if s == 0 else t2 for s in schedule]
        ))
        return detector, result

    def test_serialized_run_reports_potential_cycle(self):
        # Fully serialized: no deadlock manifests, but GoodLock sees the
        # opposite-order edges and predicts it.
        detector, result = self._run([0] * 60 + [1] * 60)
        assert result.completed
        assert len(detector.potential) == 1
        assert not detector.potential[0].first.gates

    def test_gate_lock_suppresses_report(self):
        gated = """
        class Gate { }
        class Account {
          int balance;
          Account other;
          Gate gate;
          Account(int start) { this.balance = start; }
          void setPartner(Account partner) { this.other = partner; }
          void setGate(Gate g) { this.gate = g; }
          void transferOut(int amount) {
            synchronized (this.gate) {
              synchronized (this) {
                this.balance = this.balance - amount;
                this.other.deposit(amount);
              }
            }
          }
          synchronized void deposit(int amount) {
            this.balance = this.balance + amount;
          }
        }
        test Seed {
          Gate g = new Gate();
          Account a = new Account(100);
          Account b = new Account(100);
          a.setGate(g);
          b.setGate(g);
          a.setPartner(b);
          b.setPartner(a);
          a.transferOut(1);
        }
        """
        table = load(gated)
        vm = VM(table)
        _, env = vm.run_test("Seed")
        a, b = env["a"], env["b"]
        detector = GoodLockDetector()
        execution = Execution(vm, listeners=(detector,))
        t1 = execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, a, "transferOut", [1])
        )
        t2 = execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, b, "transferOut", [1])
        )
        result = execution.run(FixedScheduler([t1] * 80 + [t2] * 80))
        assert result.completed
        # Opposite this->other orders exist, but both under the common
        # gate: not a deadlock, and GoodLock must stay silent.
        assert len(detector.potential) == 0
