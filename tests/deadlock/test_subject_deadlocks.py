"""Deadlock synthesis against the paper subjects.

Two of the nine race subjects carry genuine nested-locking hazards that
their real counterparts also have: CharArrayWriter.writeTo(other)
mirrors the JDK's classic cross-append deadlock family, and colt's
documentation warns that DynamicBin1D methods taking another bin (e.g.
``addAllOf``) can deadlock.  The pipeline must synthesize and manifest
both, and synthesize nothing for the flat-locking subjects.
"""

import pytest

from repro.deadlock import DeadlockPipeline
from repro.subjects import all_subjects, get_subject

NESTED = ("C3", "C4")
FLAT = tuple(s.key for s in all_subjects() if s.key not in NESTED)


@pytest.mark.parametrize("key", NESTED)
def test_nested_locking_subjects_deadlock(key):
    subject = get_subject(key)
    pipeline = DeadlockPipeline(subject.load())
    report = pipeline.synthesize(target_class=subject.class_name)
    assert report.pairs, key
    assert report.tests, key
    confirms = pipeline.confirm(report, random_runs=6)
    assert any(c.confirmed for c in confirms), key


@pytest.mark.parametrize("key", FLAT)
def test_flat_locking_subjects_synthesize_nothing(key):
    subject = get_subject(key)
    pipeline = DeadlockPipeline(subject.load())
    report = pipeline.synthesize(target_class=subject.class_name)
    assert report.tests == [], (key, [p.describe() for p in report.pairs])


def test_c3_crossed_test_shape():
    subject = get_subject("C3")
    pipeline = DeadlockPipeline(subject.load())
    report = pipeline.synthesize(target_class=subject.class_name)
    plan = report.tests[0].plan
    # writeTo(param): each side's receiver is the other side's argument.
    left_recv = plan.left.racy_call.receiver
    right_recv = plan.right.racy_call.receiver
    assert left_recv is not right_recv
    from repro.context.plan import SlotArg

    left_args = [a.slot for a in plan.left.racy_call.args if isinstance(a, SlotArg)]
    right_args = [a.slot for a in plan.right.racy_call.args if isinstance(a, SlotArg)]
    assert right_recv in left_args
    assert left_recv in right_args


def test_deadlock_cli(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "bank.minij"
    path.write_text(
        """
        class Account {
          int balance;
          Account other;
          Account(int start) { this.balance = start; }
          void setPartner(Account partner) { this.other = partner; }
          synchronized void transferOut(int amount) {
            this.balance = this.balance - amount;
            this.other.deposit(amount);
          }
          synchronized void deposit(int amount) {
            this.balance = this.balance + amount;
          }
        }
        test Seed {
          Account a = new Account(100);
          Account b = new Account(100);
          a.setPartner(b);
          b.setPartner(a);
          a.transferOut(10);
          b.deposit(5);
        }
        """
    )
    assert main(["deadlock", str(path)]) == 0
    out = capsys.readouterr().out
    assert "CONFIRMED" in out
    assert "Thread t1" in out
