"""Unit tests for the lockset facts walker (repro.static.facts)."""

from repro.lang import ast, load
from repro.static.facts import analyze_program


def facts_for(source):
    return analyze_program(load(source))


def sites_by_field(facts, field_name, kind=None):
    return [
        f
        for f in facts.sites.values()
        if f.field_name == field_name and (kind is None or f.kind == kind)
    ]


class TestStableFields:
    def test_ctor_only_assignment_is_stable(self):
        facts = facts_for(
            """
            class Pad { int x; }
            class A {
              Pad lock;
              int data;
              A() { this.lock = new Pad(); }
              void bump() { this.data = this.data + 1; }
            }
            test T { A a = new A(); a.bump(); }
            """
        )
        assert "lock" in facts.stable_fields
        assert "data" not in facts.stable_fields

    def test_assignment_outside_ctor_poisons_the_name(self):
        facts = facts_for(
            """
            class Pad { int x; }
            class A {
              Pad lock;
              A() { this.lock = new Pad(); }
              void swap() { this.lock = new Pad(); }
            }
            test T { A a = new A(); a.swap(); }
            """
        )
        assert "lock" not in facts.stable_fields

    def test_leaking_ctor_poisons_its_fields(self):
        # The constructor passes `this` to another object: a second
        # thread could observe `lock` before it is assigned.
        facts = facts_for(
            """
            class Pad { int x; }
            class Sink { A held; Sink(A a) { this.held = a; } }
            class A {
              Pad lock;
              A() { Sink s = new Sink(this); this.lock = new Pad(); }
            }
            test T { A a = new A(); }
            """
        )
        assert "lock" not in facts.stable_fields

    def test_pseudo_fields_never_stable(self):
        facts = facts_for(
            """
            class A {
              IntArray buf;
              A() { this.buf = new IntArray(4); }
              int peek() { return this.buf.get(0); }
            }
            test T { A a = new A(); int x = a.peek(); }
            """
        )
        assert "elem" not in facts.stable_fields
        assert "length" not in facts.stable_fields


SYNC_SOURCE = """
class Pad { int x; }
class A {
  Pad lock;
  int guarded;
  int naked;
  A() { this.lock = new Pad(); }
  void put(int v) { synchronized (this.lock) { this.guarded = v; } }
  synchronized int sget() { return this.guarded; }
  void touch() { this.naked = 1; }
}
test T { A a = new A(); a.put(3); int x = a.sget(); a.touch(); }
"""


class TestLocksAndOwners:
    def test_sync_block_lock_path(self):
        facts = facts_for(SYNC_SOURCE)
        (write,) = sites_by_field(facts, "guarded", kind="W")
        assert write.owner == ("this",)
        assert write.must_locks == frozenset({("this", "lock")})
        assert write.rel_locks() == frozenset({("lock",)})

    def test_synchronized_method_holds_this(self):
        facts = facts_for(SYNC_SOURCE)
        (read,) = sites_by_field(facts, "guarded", kind="R")
        assert read.must_locks == frozenset({("this",)})
        # Relative to the owner `this`, the monitor is the empty suffix.
        assert read.rel_locks() == frozenset({()})

    def test_unguarded_site_has_no_locks(self):
        facts = facts_for(SYNC_SOURCE)
        (write,) = sites_by_field(facts, "naked", kind="W")
        assert write.must_locks == frozenset()
        assert write.rel_locks() == frozenset()

    def test_unstable_lock_field_is_not_a_usable_path(self):
        facts = facts_for(
            """
            class Pad { int x; }
            class A {
              Pad lock;
              int data;
              A() { this.lock = new Pad(); }
              void rekey() { this.lock = new Pad(); }
              void put(int v) { synchronized (this.lock) { this.data = v; } }
            }
            test T { A a = new A(); a.put(1); a.rekey(); }
            """
        )
        (write,) = sites_by_field(facts, "data", kind="W")
        assert write.must_locks == frozenset()

    def test_reassigned_local_root_is_unusable(self):
        facts = facts_for(
            """
            class A {
              int data;
              void churn(A other) {
                A t = other;
                t = new A();
                t.data = 1;
              }
            }
            test T { A a = new A(); a.churn(a); }
            """
        )
        (write,) = sites_by_field(facts, "data", kind="W")
        assert write.owner is None


class TestThreadLocal:
    def test_fresh_unescaping_local(self):
        facts = facts_for(
            """
            class Box { int v; }
            class A {
              int scratch() { Box b = new Box(); b.v = 7; return b.v; }
            }
            test T { A a = new A(); int x = a.scratch(); }
            """
        )
        for site in sites_by_field(facts, "v"):
            assert site.thread_local

    def test_returned_local_escapes(self):
        facts = facts_for(
            """
            class Box { int v; }
            class A {
              Box make() { Box b = new Box(); b.v = 7; return b; }
            }
            test T { A a = new A(); Box got = a.make(); }
            """
        )
        for site in sites_by_field(facts, "v"):
            assert not site.thread_local

    def test_field_stored_local_escapes(self):
        facts = facts_for(
            """
            class Box { int v; }
            class A {
              Box kept;
              void make() { Box b = new Box(); b.v = 7; this.kept = b; }
            }
            test T { A a = new A(); a.make(); }
            """
        )
        for site in sites_by_field(facts, "v"):
            assert not site.thread_local

    def test_leaking_class_never_thread_local(self):
        facts = facts_for(
            """
            class Reg { Box held; Reg() { this.held = null; } }
            class Box { int v; Reg reg; Box(Reg r) { r.held = this; this.reg = r; } }
            class A {
              Reg r;
              A() { this.r = new Reg(); }
              void make() { Box b = new Box(this.r); b.v = 7; }
            }
            test T { A a = new A(); a.make(); }
            """
        )
        # Box's constructor leaks `this` into the registry, so `b` is
        # reachable by other threads the moment it is constructed.
        for site in sites_by_field(facts, "v"):
            assert not site.thread_local


class TestNodeIdsMatchRuntime:
    def test_facts_cover_recorded_access_sites(self):
        # The ids the walker keys on must be the ids the VM stamps on
        # access events, else every site falls through as Unknown.
        from repro.runtime import VM
        from repro.trace import ColumnarRecorder

        table = load(SYNC_SOURCE)
        facts = analyze_program(table)
        vm = VM(table)
        recorder = ColumnarRecorder.create("T")
        vm.run_test("T", listeners=(recorder,))
        trace = recorder.packed
        field_sites = set()
        for event in trace:
            if getattr(event, "field_name", None) in (
                "guarded",
                "naked",
                "lock",
            ) and getattr(event, "node_id", -1) >= 0:
                field_sites.add((event.field_name, event.node_id))
        assert field_sites, "seed trace recorded no field accesses"
        method_node_ids = set(facts.sites)
        in_methods = {
            (f, n) for f, n in field_sites if n in method_node_ids
        }
        # Every library-method access site the runtime recorded has
        # facts; client-level (test body) sites legitimately fall
        # through as Unknown.
        for f, n in in_methods:
            assert facts.site(n).field_name == f


class TestSerialization:
    def test_static_facts_roundtrip(self):
        from repro.narada.serial import (
            decode_static_facts,
            encode_static_facts,
        )

        facts = facts_for(SYNC_SOURCE)
        data = encode_static_facts(facts)
        back = decode_static_facts(data)
        assert back.stable_fields == facts.stable_fields
        assert back.site_count == facts.site_count
        assert set(back.sites) == set(facts.sites)
        for node_id, site in facts.sites.items():
            assert back.sites[node_id] == site
        # Stable across a second encode (cacheable artifact).
        assert encode_static_facts(back) == data
