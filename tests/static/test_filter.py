"""Unit tests for pair verdicts and budget allocation (repro.static.filter)."""

from dataclasses import dataclass, field

from repro.static.facts import SiteFacts, StaticFacts
from repro.static.filter import TestBudget as Budget
from repro.static.filter import (
    PRUNED,
    RANKED,
    RULE_CONSISTENT_LOCK,
    RULE_READ_READ,
    RULE_THREAD_LOCAL,
    SCORE_UNKNOWN,
    PairVerdict,
    allocate_budgets,
    evaluate_pair,
    filter_stats,
)


def site(node_id, kind="W", owner=("this",), locks=(), thread_local=False):
    return SiteFacts(
        node_id=node_id,
        kind=kind,
        field_name="f",
        owner=owner,
        must_locks=frozenset(locks),
        thread_local=thread_local,
    )


def facts_of(*sites):
    return StaticFacts(
        sites={s.node_id: s for s in sites}, site_count=len(sites)
    )


@dataclass
class FakePair:
    """evaluate_pair only reads ``site_pairs``; budgets read static_id."""

    site_pairs: set = field(default_factory=set)
    ident: tuple = ("p",)

    def static_id(self):
        return self.ident


@dataclass
class FakeTest:
    name: str
    covered_pairs: list


class TestDischargeRules:
    def test_consistent_lock_prunes(self):
        facts = facts_of(
            site(1, locks={("this", "lk")}),
            site(2, kind="R", locks={("this", "lk")}),
        )
        verdict = evaluate_pair(FakePair({(1, 2)}), facts)
        assert verdict.status == PRUNED
        assert verdict.reason == RULE_CONSISTENT_LOCK

    def test_sync_method_vs_guard_field_do_not_intersect(self):
        # sync method holds monitor `this` (empty suffix); the other
        # side holds this.lk — different monitors, pair survives.
        facts = facts_of(
            site(1, locks={("this",)}),
            site(2, locks={("this", "lk")}),
        )
        verdict = evaluate_pair(FakePair({(1, 2)}), facts)
        assert verdict.status == RANKED

    def test_relative_suffix_crosses_distinct_owner_paths(self):
        # a.box.f under sync(a.box.lk) vs this.f under sync(this.lk):
        # racing accesses share the owner address, so the common
        # relative suffix ("lk",) names one monitor.
        facts = facts_of(
            site(1, owner=("a", "box"), locks={("a", "box", "lk")}),
            site(2, owner=("this",), locks={("this", "lk")}),
        )
        verdict = evaluate_pair(FakePair({(1, 2)}), facts)
        assert verdict.status == PRUNED
        assert verdict.reason == RULE_CONSISTENT_LOCK

    def test_thread_local_side_discharges(self):
        facts = facts_of(
            site(1, owner=("b",), thread_local=True),
            site(2),
        )
        verdict = evaluate_pair(FakePair({(1, 2)}), facts)
        assert verdict.status == PRUNED
        assert verdict.reason == RULE_THREAD_LOCAL

    def test_read_read_discharges(self):
        facts = facts_of(site(1, kind="R"), site(2, kind="R"))
        verdict = evaluate_pair(FakePair({(1, 2)}), facts)
        assert verdict.status == PRUNED
        assert verdict.reason == RULE_READ_READ

    def test_unknown_site_falls_through(self):
        facts = facts_of(site(1, locks={("this", "lk")}))
        verdict = evaluate_pair(FakePair({(1, 99)}), facts)
        assert verdict.status == RANKED
        assert verdict.score == SCORE_UNKNOWN

    def test_one_surviving_site_pair_keeps_the_pair(self):
        facts = facts_of(
            site(1, locks={("this", "lk")}),
            site(2, locks={("this", "lk")}),
            site(3),  # unguarded write, same field
        )
        verdict = evaluate_pair(FakePair({(1, 2), (1, 3)}), facts)
        assert verdict.status == RANKED

    def test_empty_site_pairs_is_never_pruned(self):
        verdict = evaluate_pair(FakePair(set()), facts_of())
        assert verdict.status == RANKED

    def test_deadlock_risk_flagged_on_nested_locks(self):
        facts = facts_of(
            site(1, locks={("this", "a"), ("this", "b")}),
            site(2, kind="R", locks={("this", "b"), ("this", "a")}),
        )
        verdict = evaluate_pair(FakePair({(1, 2)}), facts)
        assert verdict.pruned
        assert verdict.deadlock_risk


class TestScores:
    def test_both_unguarded_write_write_outranks_guarded(self):
        facts = facts_of(site(1), site(2), site(3, locks={("this", "x")}))
        hot = evaluate_pair(FakePair({(1, 2)}), facts)
        cooler = evaluate_pair(FakePair({(1, 3)}), facts)
        assert hot.score > cooler.score

    def test_unknown_scores_highest_tier(self):
        facts = facts_of(site(1))
        unknown = evaluate_pair(FakePair({(1, 99)}), facts)
        assert unknown.score == SCORE_UNKNOWN


class TestBudgets:
    def p(self, ident):
        return FakePair(ident=ident)

    def test_fully_pruned_test_gets_zero_runs(self):
        pair = self.p(("a",))
        verdicts = {("a",): PairVerdict(PRUNED, RULE_READ_READ, 0)}
        budgets = allocate_budgets(
            [FakeTest("t1", [pair])], verdicts, base_runs=8
        )
        assert budgets["t1"] == Budget(runs=0, score=0, pruned=True)

    def test_deadlock_watch_keeps_half_budget(self):
        pair = self.p(("a",))
        verdicts = {
            ("a",): PairVerdict(
                PRUNED, RULE_CONSISTENT_LOCK, 0, deadlock_risk=True
            )
        }
        budgets = allocate_budgets(
            [FakeTest("t1", [pair])], verdicts, base_runs=8
        )
        assert budgets["t1"].runs == 4
        assert budgets["t1"].pruned
        # Never rounds down to a skip.
        budgets = allocate_budgets(
            [FakeTest("t1", [pair])], verdicts, base_runs=1
        )
        assert budgets["t1"].runs == 1

    def test_one_ranked_pair_restores_full_budget(self):
        pruned = self.p(("a",))
        ranked = self.p(("b",))
        verdicts = {
            ("a",): PairVerdict(PRUNED, RULE_READ_READ, 0),
            ("b",): PairVerdict(RANKED, "", 5),
        }
        budgets = allocate_budgets(
            [FakeTest("t1", [pruned, ranked])], verdicts, base_runs=8
        )
        assert budgets["t1"] == Budget(runs=8, score=5, pruned=False)

    def test_missing_verdict_means_full_budget(self):
        # Filter off (or stale cache): no verdicts -> legacy behavior.
        budgets = allocate_budgets(
            [FakeTest("t1", [self.p(("a",))])], {}, base_runs=8
        )
        assert budgets["t1"] == Budget(runs=8, score=0, pruned=False)


class TestVerdictSerialization:
    def test_roundtrip(self):
        for verdict in (
            PairVerdict(PRUNED, RULE_THREAD_LOCAL, 0, deadlock_risk=True),
            PairVerdict(RANKED, "", 7),
        ):
            assert PairVerdict.from_dict(verdict.to_dict()) == verdict

    def test_tolerates_minimal_dict(self):
        verdict = PairVerdict.from_dict({"status": RANKED})
        assert verdict.status == RANKED
        assert verdict.score == 0
        assert not verdict.deadlock_risk


class TestStats:
    def test_filter_stats_partition(self):
        verdicts = [
            PairVerdict(PRUNED, RULE_CONSISTENT_LOCK, 0),
            PairVerdict(PRUNED, RULE_CONSISTENT_LOCK, 0, deadlock_risk=True),
            PairVerdict(PRUNED, RULE_THREAD_LOCAL, 0),
            PairVerdict(RANKED, "", 3),
        ]
        stats = filter_stats(verdicts)
        assert stats.generated == 4
        assert stats.pruned == 3
        assert stats.ranked == 1
        assert stats.by_reason[RULE_CONSISTENT_LOCK] == 2
        assert stats.by_reason[RULE_THREAD_LOCAL] == 1
        assert stats.deadlock_watch == 1
        assert stats.score_total == 3
        assert abs(stats.pruned_fraction - 0.75) < 1e-9
