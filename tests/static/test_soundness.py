"""Soundness of the static pre-filter against the corpus oracle.

The hard requirement on the filter is *zero lost true races*: a pair
the oracle marks racy must never be discharged.  These tests sweep the
full default 200-subject corpus (cheap — analysis + pair generation
only, no fuzzing) and hypothesis-chosen template compositions, mapping
every pruned pair to the oracle's (field, method-pair) key space and
asserting the intersection is empty.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_traces
from repro.corpus import (
    CorpusConfig,
    compose_subject,
    generate_corpus,
    template_names,
)
from repro.lang import load
from repro.pairs import generate_pairs
from repro.runtime import VM
from repro.trace import ColumnarRecorder


def judged_pairs(subject):
    """Run stages 0-2b (seed, analysis, generate, judge) for a subject."""
    table = load(subject.source)
    traces = []
    for test in table.program.tests:
        vm = VM(table)
        recorder = ColumnarRecorder.create(test.name)
        vm.run_test(test.name, listeners=(recorder,))
        traces.append(recorder.packed)
    analysis = analyze_traces(traces)
    return generate_pairs(
        analysis, target_class=subject.class_name, table=table
    )


def pair_key(pair):
    methods = tuple(
        sorted((pair.first.method_id()[1], pair.second.method_id()[1]))
    )
    return (pair.field[1], methods)


def assert_no_oracle_race_pruned(subject):
    pairs = judged_pairs(subject)
    assert len(pairs.verdicts) == len(pairs)
    oracle = subject.verdict.race_keys()
    pruned = {
        pair_key(pair)
        for pair, verdict in zip(pairs, pairs.verdicts)
        if verdict.pruned
    }
    lost = pruned & oracle
    assert not lost, (
        f"{subject.key} ({'+'.join(subject.template_keys)}): "
        f"filter pruned oracle race(s) {sorted(lost)}"
    )
    return pairs


def test_default_corpus_never_prunes_an_oracle_race():
    subjects = generate_corpus(CorpusConfig())
    assert len(subjects) == 200
    total = pruned = 0
    for subject in subjects:
        pairs = assert_no_oracle_race_pruned(subject)
        total += len(pairs)
        pruned += pairs.pruned_count()
    # The corpus exists to exercise both halves of the verdict space:
    # a filter that prunes nothing (or everything) is broken.
    assert 0 < pruned < total


def test_alternate_seed_corpus_never_prunes_an_oracle_race():
    for subject in generate_corpus(CorpusConfig(seed=1234, count=50)):
        assert_no_oracle_race_pruned(subject)


@settings(max_examples=25, deadline=None)
@given(
    keys=st.lists(
        st.sampled_from(template_names()), min_size=1, max_size=4
    ),
    ordinal=st.integers(min_value=0, max_value=10_000),
)
def test_random_compositions_never_prune_an_oracle_race(keys, ordinal):
    subject = compose_subject(
        list(keys), class_name="Prop", key=f"H{ordinal}"
    )
    assert_no_oracle_race_pruned(subject)


def test_race_free_disciplines_are_fully_pruned():
    # Templates constructed to be race-free must be cleaned out
    # entirely: that is the filter earning its keep.
    for name in ("consistent_lock", "thread_local_receiver"):
        subject = compose_subject([name], class_name="Clean", key="S0")
        assert not subject.verdict.race_keys()
        pairs = judged_pairs(subject)
        assert pairs, f"{name}: no candidate pairs generated"
        assert pairs.pruned_count() == len(pairs), (
            f"{name}: expected all pairs pruned, got "
            f"{pairs.pruned_count()}/{len(pairs)}"
        )


def test_racy_disciplines_survive():
    for name in ("wrong_mutex", "unguarded_reader", "double_checked_init"):
        subject = compose_subject([name], class_name="Hot", key="S1")
        pairs = assert_no_oracle_race_pruned(subject)
        ranked = len(pairs) - pairs.pruned_count()
        assert ranked >= len(subject.verdict.race_keys())
