"""The wrapper family generalizes (paper §5, footnote 5).

For each extra openjdk-style wrapper the pipeline must, without any
per-class tuning: find inner-state racing pairs, derive the
two-wrappers-one-backing context, and expose harmful races.
"""

import pytest

from repro.fuzz import RaceFuzzer
from repro.narada import Narada
from repro.subjects.extra_wrappers import EXTRA_WRAPPERS

WRAPPERS = {w.name: w for w in EXTRA_WRAPPERS}


@pytest.fixture(scope="module")
def pipelines():
    built = {}
    for wrapper in EXTRA_WRAPPERS:
        narada = Narada(wrapper.load())
        report = narada.synthesize_for_class(wrapper.class_name)
        built[wrapper.name] = (wrapper, narada, report)
    return built


class TestWrapperFamily:
    @pytest.mark.parametrize("name", sorted(WRAPPERS))
    def test_inner_state_pairs_found(self, name, pipelines):
        wrapper, _, report = pipelines[name]
        inner_pairs = [
            p for p in report.pairs if p.field[0] == wrapper.backing_class
        ]
        assert inner_pairs, name

    @pytest.mark.parametrize("name", sorted(WRAPPERS))
    def test_shared_backing_context_derived(self, name, pipelines):
        wrapper, _, report = pipelines[name]
        shared_backing = [
            plan
            for plan in report.plans
            if plan.shared_slot is not None
            and plan.shared_slot.class_name == wrapper.backing_class
            and plan.full_context
        ]
        assert shared_backing, name
        for plan in shared_backing:
            # Distinct wrapper receivers around the shared backing.
            assert plan.left.racy_call.receiver is not plan.right.racy_call.receiver

    @pytest.mark.parametrize("name", sorted(WRAPPERS))
    def test_harmful_races_exposed(self, name, pipelines):
        wrapper, narada, report = pipelines[name]
        fuzzer = RaceFuzzer(narada.table, random_runs=4)
        harmful = 0
        for test in report.tests[:12]:
            fuzz = fuzzer.fuzz(test)
            harmful += len(fuzz.harmful())
            if harmful:
                break
        assert harmful >= 1, name

    def test_family_summary(self, pipelines):
        # All three wrappers show the same defect signature: pairs on the
        # backing container's count field.
        for name, (wrapper, _, report) in pipelines.items():
            fields = {p.field for p in report.pairs}
            assert (wrapper.backing_class, "count") in fields, name
