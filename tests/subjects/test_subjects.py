"""Subject sanity: all nine classes load, seed suites run clean, and the
per-subject defect patterns are present in the analysis output."""

import pytest

from repro.analysis import analyze_traces
from repro.lang import load
from repro.narada import Narada
from repro.runtime import VM
from repro.subjects import all_subjects, get_subject
from repro.trace import Recorder

SUBJECT_KEYS = [s.key for s in all_subjects()]


@pytest.fixture(scope="module")
def loaded():
    return {s.key: (s, s.load()) for s in all_subjects()}


class TestRegistry:
    def test_nine_subjects(self):
        assert SUBJECT_KEYS == [f"C{i}" for i in range(1, 10)]

    def test_get_subject_round_trips(self):
        for key in SUBJECT_KEYS:
            assert get_subject(key).key == key

    def test_unknown_subject_raises(self):
        with pytest.raises(KeyError):
            get_subject("C42")

    def test_metadata_complete(self):
        for subject in all_subjects():
            assert subject.benchmark
            assert subject.class_name
            assert subject.description
            assert subject.paper.methods > 0
            assert subject.paper.race_pairs > 0


class TestSeedSuites:
    @pytest.mark.parametrize("key", SUBJECT_KEYS)
    def test_seed_tests_run_clean(self, key, loaded):
        subject, table = loaded[key]
        for test in table.program.tests:
            vm = VM(table)
            result, _ = vm.run_test(test.name)
            assert result.clean, (key, test.name, result.faults)

    @pytest.mark.parametrize("key", SUBJECT_KEYS)
    def test_every_subject_method_invoked_once(self, key, loaded):
        # §5: "each method in the class is invoked exactly once".
        subject, table = loaded[key]
        decl = table.program.class_decl(subject.class_name)
        traces = []
        for test in table.program.tests:
            vm = VM(table)
            recorder = Recorder(test.name)
            vm.run_test(test.name, listeners=(recorder,))
            traces.append(recorder.trace)
        invoked = set()
        for trace in traces:
            for event in trace.client_invocations():
                if event.class_name == subject.class_name:
                    invoked.add(event.method)
        # Constructors may run nested inside factory methods (C1's
        # wrappers are created via WriteBehindQueues), so only ordinary
        # methods must appear as client invocations.
        declared = {m.name for m in decl.methods if not m.is_constructor}
        assert declared <= invoked, (
            key,
            sorted(declared - invoked),
        )

    @pytest.mark.parametrize("key", SUBJECT_KEYS)
    def test_analysis_finds_unprotected_accesses(self, key, loaded):
        subject, table = loaded[key]
        traces = []
        for test in table.program.tests:
            vm = VM(table)
            recorder = Recorder(test.name)
            vm.run_test(test.name, listeners=(recorder,))
            traces.append(recorder.trace)
        analysis = analyze_traces(traces)
        unprotected = [
            a
            for summary in analysis.for_class(subject.class_name)
            for a in summary.unprotected_accesses()
        ]
        assert unprotected, key


class TestDefectPatterns:
    def test_c1_wrapper_mutex_is_wrapper(self):
        # The defining bug: delegated accesses hold the wrapper's lock,
        # not the inner queue's.
        subject, table = get_subject("C1"), get_subject("C1").load()
        narada = Narada(table)
        report = narada.synthesize_for_class(subject.class_name)
        inner_pairs = [
            p for p in report.pairs if p.field[0] == "CoalescedWriteBehindQueue"
        ]
        assert inner_pairs
        # The context for inner-state pairs wraps a shared coalesced queue.
        full = [
            plan
            for plan in report.plans
            if plan.shared_slot is not None
            and plan.shared_slot.class_name == "CoalescedWriteBehindQueue"
            and plan.full_context
        ]
        assert full

    def test_c4_context_mostly_underivable(self):
        subject = get_subject("C4")
        narada = Narada(subject.load())
        report = narada.synthesize_for_class(subject.class_name)
        fallback = [p for p in report.plans if not p.full_context]
        assert len(fallback) > len(report.plans) / 2

    def test_c5_everything_unprotected(self):
        subject = get_subject("C5")
        narada = Narada(subject.load())
        analysis = narada.analysis()
        for summary in analysis.for_class(subject.class_name):
            if summary.is_constructor:
                continue
            for access in summary.accesses:
                if access.in_constructor:
                    continue
                assert access.unprotected, (summary.method, access.describe())

    def test_c6_reset_writes_constants(self):
        from repro.detect import collect_constant_write_sites

        subject = get_subject("C6")
        table = subject.load()
        sites = collect_constant_write_sites(table.program)
        reset = table.method("Scanner", "reset")
        reset_sites = {stmt.node_id for stmt in reset.body.stmts}
        assert reset_sites <= sites

    def test_c9_smallest_pair_count(self):
        counts = {}
        for key in ("C5", "C9"):
            subject = get_subject(key)
            narada = Narada(subject.load())
            counts[key] = narada.synthesize_for_class(subject.class_name).pair_count
        assert counts["C9"] < counts["C5"]
