"""Unit tests for the Pair Generator (§3.3)."""

from repro.analysis import analyze_traces
from repro.lang import load
from repro.pairs import generate_pairs
from repro.runtime import VM
from repro.trace import Recorder

SOURCE = """
class Item { int payload; }
class Store {
  int count;
  Item slot;
  Store() { this.count = 0; }
  void put(Item e) {
    this.slot = e;
    this.count = this.count + 1;
  }
  int size() { return this.count; }
  synchronized int safeSize() { return this.count; }
  Item take() {
    this.count = this.count - 1;
    return this.slot;
  }
  int peekPayload() { return this.slot.payload; }
}
test Seed {
  Store s = new Store();
  Item i = new Item();
  s.put(i);
  int n = s.size();
  int m = s.safeSize();
  Item got = s.take();
  s.put(i);
  int p = s.peekPayload();
}
"""


def pairs_for(source=SOURCE, target=None):
    table = load(source)
    vm = VM(table)
    recorder = Recorder("Seed")
    result, _ = vm.run_test("Seed", listeners=(recorder,))
    assert result.clean
    analysis = analyze_traces([recorder.trace])
    return generate_pairs(analysis, target_class=target)


class TestPairGeneration:
    def test_pairs_found(self):
        pairs = pairs_for()
        assert pairs

    def test_same_method_pair_exists_for_each_written_field(self):
        # Two threads running put() race on both fields it writes.
        pairs = pairs_for()
        same_method = {
            p.field
            for p in pairs
            if p.first.method_id() == p.second.method_id() == ("Store", "put")
        }
        assert ("Store", "count") in same_method
        assert ("Store", "slot") in same_method

    def test_same_site_pair_exists(self):
        pairs = pairs_for()
        same = [p for p in pairs if p.same_site]
        assert same
        assert all(p.first.access.is_write for p in same)

    def test_every_pair_has_a_write(self):
        for pair in pairs_for():
            assert pair.involves_write()

    def test_first_side_always_unprotected(self):
        for pair in pairs_for():
            assert pair.first.access.unprotected

    def test_read_read_pairs_excluded(self):
        # size() vs safeSize(): both only read count -> no pair between
        # them (but each may pair with writers).
        for pair in pairs_for():
            methods = {pair.first.method_id()[1], pair.second.method_id()[1]}
            if methods == {"size", "safeSize"}:
                raise AssertionError(f"read-read pair generated: {pair.describe()}")

    def test_protected_access_can_be_second_side(self):
        # safeSize reads under the monitor; it still pairs with put's
        # unprotected write (the paper pairs unprotected with
        # "(un)protected accesses on the same object").
        pairs = pairs_for()
        assert any(
            {p.first.method_id()[1], p.second.method_id()[1]} == {"put", "safeSize"}
            for p in pairs
        )

    def test_constructor_accesses_discarded(self):
        # Store() writes count in the constructor; no pair may have a
        # constructor side.
        for pair in pairs_for():
            assert not pair.first.summary.is_constructor
            assert not pair.second.summary.is_constructor
            assert not pair.first.access.in_constructor
            assert not pair.second.access.in_constructor

    def test_pairs_deduplicated_across_seed_reruns(self):
        table = load(SOURCE)
        traces = []
        for _ in range(3):
            vm = VM(table)
            recorder = Recorder("Seed")
            vm.run_test("Seed", listeners=(recorder,))
            traces.append(recorder.trace)
        analysis = analyze_traces(traces)
        once = pairs_for()
        thrice = generate_pairs(analysis)
        assert {p.static_id() for p in thrice} == {p.static_id() for p in once}

    def test_site_pairs_accumulate(self):
        pairs = pairs_for()
        for pair in pairs:
            assert pair.site_pairs
            for low, high in pair.site_pairs:
                assert low <= high

    def test_target_class_filters_both_sides(self):
        source = SOURCE + """
        class Outside {
          int count;
          void bump() { this.count = this.count + 1; }
        }
        test SeedOutside { Outside o = new Outside(); o.bump(); }
        """
        table = load(source)
        traces = []
        for name in ("Seed", "SeedOutside"):
            vm = VM(table)
            recorder = Recorder(name)
            vm.run_test(name, listeners=(recorder,))
            traces.append(recorder.trace)
        analysis = analyze_traces(traces)
        pairs = generate_pairs(analysis, target_class="Store")
        for pair in pairs:
            assert pair.first.summary.class_name == "Store"
            assert pair.second.summary.class_name == "Store"

    def test_field_identity_separates_classes(self):
        # Store.count must not pair with Outside.count even untargeted.
        source = SOURCE + """
        class Outside {
          int count;
          void bump() { this.count = this.count + 1; }
        }
        test SeedOutside { Outside o = new Outside(); o.bump(); }
        """
        table = load(source)
        traces = []
        for name in ("Seed", "SeedOutside"):
            vm = VM(table)
            recorder = Recorder(name)
            vm.run_test(name, listeners=(recorder,))
            traces.append(recorder.trace)
        pairs = generate_pairs(analyze_traces(traces))
        for pair in pairs:
            assert pair.first.access.class_name == pair.second.access.class_name


class TestCanonicalOrientation:
    # Two seed tests visit the same two unprotected methods in opposite
    # orders; whichever order the enumeration meets them, the pair's
    # representative first/second sides must come out the same.
    SYMMETRIC = """
    class Counter {
      int n;
      void incA() { this.n = this.n + 1; }
      void incB() { this.n = this.n + 2; }
    }
    test SeedAB { Counter c = new Counter(); c.incA(); c.incB(); }
    test SeedBA { Counter c = new Counter(); c.incB(); c.incA(); }
    """

    def _pairs_from(self, seed_order):
        table = load(self.SYMMETRIC)
        traces = []
        for name in seed_order:
            vm = VM(table)
            recorder = Recorder(name)
            vm.run_test(name, listeners=(recorder,))
            traces.append(recorder.trace)
        return generate_pairs(analyze_traces(traces))

    def test_orientation_is_order_invariant(self):
        forward = self._pairs_from(("SeedAB", "SeedBA"))
        reverse = self._pairs_from(("SeedBA", "SeedAB"))
        assert len(forward) == len(reverse)
        for a, b in zip(forward, reverse):
            assert a.static_id() == b.static_id()
            assert a.first.static_id() == b.first.static_id()
            assert a.second.static_id() == b.second.static_id()
            assert a.site_pairs == b.site_pairs

    def test_symmetric_pair_pinned_to_smaller_static_id(self):
        for pair in self._pairs_from(("SeedAB", "SeedBA")):
            second = pair.second.access
            if pair.same_site:
                continue
            if second.unprotected and not second.in_constructor:
                assert pair.first.static_id() <= pair.second.static_id()

    def test_one_sided_pair_keeps_unprotected_first(self):
        # put (unprotected W) vs safeSize (protected R): orientation
        # must keep the documented unprotected-first invariant even
        # though safeSize's static id may sort lower.
        for pair in pairs_for():
            assert pair.first.access.unprotected
