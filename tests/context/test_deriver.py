"""Unit tests for the Context Deriver (§3.3, Fig. 10)."""

from repro.analysis import analyze_traces
from repro.context import ContextDeriver
from repro.context.plan import SlotArg
from repro.lang import load
from repro.pairs import generate_pairs
from repro.runtime import VM
from repro.trace import Recorder


def setup(source, test_names=("Seed",)):
    table = load(source)
    traces = []
    for name in test_names:
        vm = VM(table)
        recorder = Recorder(name)
        result, _ = vm.run_test(name, listeners=(recorder,))
        assert result.clean, result.faults
        traces.append(recorder.trace)
    analysis = analyze_traces(traces)
    pairs = generate_pairs(analysis)
    deriver = ContextDeriver(analysis, table)
    return table, analysis, pairs, deriver


FIG13 = """
class X { Opaque o; }
class Y { }
class Z { X w; void baz(X x) { this.w = x; } }
class A {
  X x; Y y;
  void foo(Y y) {
    synchronized (this) {
      A b = this;
      X t = b.x;
      t.o = rand();
      b.y = y;
    }
  }
  void bar(Z z) { this.x = z.w; }
}
test Seed {
  Z z = new Z();
  X x = new X();
  z.baz(x);
  A a = new A();
  a.bar(z);
  Y y = new Y();
  a.foo(y);
}
"""


def find_pair(pairs, field, methods=None):
    for pair in pairs:
        if pair.field != field:
            continue
        if methods is not None:
            got = {pair.first.method_id()[1], pair.second.method_id()[1]}
            if got != set(methods):
                continue
        return pair
    raise AssertionError(f"no pair on {field} among {[p.describe() for p in pairs]}")


class TestFig13Derivation:
    def test_paper_context_sequence(self):
        # §3.3: z.baz(x); a.bar(z); a'.bar(z); then foo twice concurrently.
        _, _, pairs, deriver = setup(FIG13)
        pair = find_pair(pairs, ("X", "o"), methods={"foo"})
        plan = deriver.derive(pair)
        assert plan.shared_slot is not None
        assert plan.shared_slot.class_name == "X"
        for side in (plan.left, plan.right):
            methods = [c.method for c in side.setter_calls]
            assert methods == ["baz", "bar"]
            assert side.full_context
        # Receivers are distinct objects (sharing them would serialize
        # on foo's monitor).
        assert not plan.receivers_shared
        assert plan.left.racy_call.receiver is not plan.right.racy_call.receiver

    def test_shared_payload_is_one_slot(self):
        _, _, pairs, deriver = setup(FIG13)
        pair = find_pair(pairs, ("X", "o"), methods={"foo"})
        plan = deriver.derive(pair)
        left_payloads = [
            arg.slot
            for call in plan.left.setter_calls
            for arg in call.args
            if isinstance(arg, SlotArg)
        ]
        right_payloads = [
            arg.slot
            for call in plan.right.setter_calls
            for arg in call.args
            if isinstance(arg, SlotArg)
        ]
        assert plan.shared_slot in left_payloads
        assert plan.shared_slot in right_payloads

    def test_receiver_level_pair_shares_receiver(self):
        # bar writes A.x (owner = receiver): the only way to share is
        # through the receiver itself.
        _, _, pairs, deriver = setup(FIG13)
        pair = find_pair(pairs, ("A", "x"), methods={"bar"})
        plan = deriver.derive(pair)
        assert plan.receivers_shared
        assert plan.left.racy_call.receiver is plan.right.racy_call.receiver


class TestConstructorSetter:
    WRAPPER = """
    interface Q { void go(); }
    class Inner implements Q {
      int state;
      void go() { this.state = this.state + 1; }
    }
    class Wrapper implements Q {
      Q inner;
      Wrapper(Q q) { this.inner = q; }
      void go() { synchronized (this) { this.inner.go(); } }
    }
    test Seed {
      Inner i = new Inner();
      Wrapper w = new Wrapper(i);
      w.go();
    }
    """

    def test_constructor_used_to_set_context(self):
        _, _, pairs, deriver = setup(self.WRAPPER)
        pair = find_pair(pairs, ("Inner", "state"))
        plan = deriver.derive(pair)
        assert plan.shared_slot.class_name == "Inner"
        for side in (plan.left, plan.right):
            assert len(side.setter_calls) == 1
            ctor = side.setter_calls[0]
            assert ctor.is_constructor
            assert ctor.class_name == "Wrapper"
            assert ctor.produces is side.racy_call.receiver
        # Two *different* wrappers around one shared inner object.
        assert plan.left.racy_call.receiver is not plan.right.racy_call.receiver


class TestFactorySetter:
    FACTORY = """
    interface Q { void go(); }
    class Inner implements Q {
      int state;
      void go() { this.state = this.state + 1; }
    }
    class Wrapper implements Q {
      Q inner;
      Wrapper(Q q) { this.inner = q; }
      void go() { synchronized (this) { this.inner.go(); } }
    }
    class Factory {
      Q wrap(Q q) { return new Wrapper(q); }
    }
    test Seed {
      Factory f = new Factory();
      Inner i = new Inner();
      Q w = f.wrap(i);
      w.go();
    }
    """

    def test_factory_return_entry_usable(self):
        table, analysis, pairs, deriver = setup(self.FACTORY)
        pair = find_pair(pairs, ("Inner", "state"))
        plan = deriver.derive(pair)
        assert plan.shared_slot.class_name == "Inner"
        for side in (plan.left, plan.right):
            assert len(side.setter_calls) == 1
            call = side.setter_calls[0]
            # Either the ctor or the factory method works; both must
            # produce the racy receiver.
            assert call.produces is side.racy_call.receiver


class TestFallbacks:
    UNSETTABLE = """
    class Hidden { int v; }
    class Owner {
      Hidden secret;
      Owner() { this.secret = new Hidden(); }
      synchronized void poke() { this.secret.v = this.secret.v + 1; }
    }
    test Seed { Owner o = new Owner(); o.poke(); }
    """

    def test_unsettable_context_falls_back_to_receiver(self):
        # The C4 phenomenon: Hidden is library-allocated (NC), no setter
        # exists, so sharing falls back to the receiver prefix.
        _, _, pairs, deriver = setup(self.UNSETTABLE)
        pair = find_pair(pairs, ("Hidden", "v"))
        plan = deriver.derive(pair)
        assert plan.shared_slot is not None
        assert plan.shared_slot.class_name == "Owner"
        assert plan.receivers_shared
        assert not plan.full_context

    PARAM_OWNER = """
    class Box { int n; }
    class Worker {
      void bump(Box b) { b.n = b.n + 1; }
    }
    test Seed {
      Worker w = new Worker();
      Box b = new Box();
      w.bump(b);
    }
    """

    def test_param_rooted_owner_shares_argument(self):
        _, _, pairs, deriver = setup(self.PARAM_OWNER)
        pair = find_pair(pairs, ("Box", "n"))
        plan = deriver.derive(pair)
        assert plan.shared_slot.class_name == "Box"
        # The shared box is passed as the racy call's argument on both
        # sides; receivers are distinct workers.
        for side in (plan.left, plan.right):
            args = side.racy_call.args
            assert any(
                isinstance(a, SlotArg) and a.slot is plan.shared_slot for a in args
            )
        assert not plan.receivers_shared
