"""Unit tests for the setter database (Fig. 10's query index)."""

from repro.analysis import analyze_traces
from repro.context.deriver import SetterDatabase
from repro.lang import load
from repro.runtime import VM
from repro.trace import Recorder

SOURCE = """
class Item { }
class Box {
  Item content;
  void fill(Item i) { this.content = i; }
}
class Crate {
  Box inner;
  Crate(Box b) { this.inner = b; }
}
class Factory {
  Crate wrap(Box b) { return new Crate(b); }
}
class Mover {
  void stuff(Box target, Item i) { target.content = i; }
}
test Seed {
  Item item = new Item();
  Box box = new Box();
  box.fill(item);
  Crate crate = new Crate(box);
  Factory f = new Factory();
  Crate viaFactory = f.wrap(box);
  Mover m = new Mover();
  m.stuff(box, item);
}
"""


def database():
    table = load(SOURCE)
    vm = VM(table)
    recorder = Recorder("Seed")
    vm.run_test("Seed", listeners=(recorder,))
    analysis = analyze_traces([recorder.trace])
    return SetterDatabase(analysis)


class TestIndexing:
    def test_receiver_write_indexed(self):
        db = database()
        setters = db.receiver_writes.get(("Box", ("content",)), [])
        methods = {s.summary.method for s in setters}
        assert "fill" in methods

    def test_constructor_indexed_as_receiver_write(self):
        db = database()
        setters = db.receiver_writes.get(("Crate", ("inner",)), [])
        assert any(s.summary.is_constructor for s in setters)

    def test_factory_return_indexed(self):
        db = database()
        returns = db.returns.get(("Crate", ("inner",)), [])
        methods = {s.summary.method for s in returns}
        assert "wrap" in methods

    def test_param_write_indexed(self):
        db = database()
        setters = db.param_writes.get(("Box", ("content",)), [])
        entries = {(s.summary.method, s.target_param) for s in setters}
        assert ("stuff", 1) in entries

    def test_entries_deduplicated_across_reruns(self):
        table = load(SOURCE)
        traces = []
        for _ in range(3):
            vm = VM(table)
            recorder = Recorder("Seed")
            vm.run_test("Seed", listeners=(recorder,))
            traces.append(recorder.trace)
        triple = SetterDatabase(analyze_traces(traces))
        single = database()
        assert len(triple.receiver_writes.get(("Box", ("content",)), [])) == len(
            single.receiver_writes.get(("Box", ("content",)), [])
        )

    def test_unrelated_keys_absent(self):
        db = database()
        assert ("Item", ("content",)) not in db.receiver_writes
        assert ("Box", ("inner",)) not in db.receiver_writes
